//! `PolledComm`: the completion-based comm endpoint for the thread-free
//! engine, plus the `run_polled_*` harness family.
//!
//! [`PolledComm`] mirrors [`crate::SimComm`] operation for operation —
//! the same poll closures, the same cost model, the same trace spans and
//! `RankStats` accounting in the same order, the same fault-gate
//! placement — with one difference: operations that would park the rank
//! thread are `async` and return `Pending(wake_at)` to the
//! [`kacc_sim_core::polled::PolledSim`] driver instead. Because the two
//! engines share the kernel's event-queue bookkeeping and this module
//! replays `SimComm`'s exact sequence of poll evaluations, state reads,
//! and tracer calls, a polled run is bitwise-identical (virtual times,
//! stats, payloads, traces) to the threads run of the same program — the
//! engine-equivalence suite pins this.
//!
//! `SimComm` itself stays untouched as the reference implementation:
//! legacy closure-on-threads bodies keep running there, and any drift
//! between the two is a bug in this mirror.

use crate::fluid::FlowId;
use crate::state::{MachineState, RankStats};
use crate::team::TeamRun;
use kacc_comm::{BufId, CommError, RemoteToken, Result, Tag, Topology};
use kacc_fault::{FaultDecision, FaultHook, FaultOp, FaultSite};
use kacc_model::{ArchProfile, FabricParams};
use kacc_sim_core::polled::{sim_advance, sim_now, sim_poll, sim_tid, sim_with_state, PolledSim};
use kacc_sim_core::Poll;
use kacc_trace::{Event, Tracer, Track};
use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;

pub use crate::simcomm::CmaDir;

/// One rank's endpoint into the simulated machine, polled-engine
/// flavor. Construct inside a rank task with [`PolledComm::new`]; the
/// cached cost constants match [`crate::SimComm`] field for field.
pub struct PolledComm {
    rank: usize,
    nranks: usize,
    topo: Topology,
    nodes: Vec<usize>,
    node: usize,
    local: usize,
    t_syscall: u64,
    t_permcheck: u64,
    sm_msg_ns: f64,
    sm_byte_ns: f64,
    bw_core: f64,
    inter_socket_bw_penalty: f64,
    page_size: usize,
    pin_batch_pages: usize,
    net_alpha_ns: f64,
    net_bw: f64,
    qpi_weight: f64,
    tracer: Tracer,
    fault: FaultHook,
}

impl PolledComm {
    /// Build the endpoint for `rank`. Must be called from inside the
    /// rank's task (the harness guarantees tasks are spawned in rank
    /// order, so the driving tid must equal the rank).
    pub fn new(rank: usize) -> PolledComm {
        assert_eq!(sim_tid(), rank, "rank tasks must be spawned in rank order");
        let (nranks, topo, nodes, local, a, fabric, tracer, fault) =
            sim_with_state(|s: &mut MachineState, _| {
                (
                    s.nranks,
                    s.topo,
                    s.node_of.clone(),
                    s.local_rank(rank),
                    s.arch.clone(),
                    s.net.as_ref().map(|n| n.params.clone()),
                    s.tracer.clone(),
                    s.fault.clone(),
                )
            });
        PolledComm {
            tracer,
            fault,
            node: nodes[rank],
            nodes,
            local,
            rank,
            nranks,
            topo,
            t_syscall: a.t_syscall_ns as u64,
            t_permcheck: a.t_permcheck_ns as u64,
            sm_msg_ns: a.sm_msg_ns,
            sm_byte_ns: a.sm_byte_ns,
            bw_core: a.bw_core,
            inter_socket_bw_penalty: a.inter_socket_bw_penalty,
            page_size: a.page_size,
            pin_batch_pages: a.pin_batch_pages,
            net_alpha_ns: fabric.as_ref().map_or(0.0, |f| f.alpha_ns),
            net_bw: fabric.as_ref().map_or(f64::INFINITY, |f| f.bw_link),
            qpi_weight: (a.bw_total / a.bw_qpi).max(1.0),
        }
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the team.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Socket topology of this rank's node.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.nodes.get(rank).copied().unwrap_or(0)
    }

    /// Current virtual time.
    pub fn time_ns(&self) -> u64 {
        sim_now::<MachineState>()
    }

    /// Shared tracer (off unless the run was traced).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    fn check_local(&self, buf: BufId, off: usize, len: usize) -> Result<()> {
        let cap = self.buf_len(buf)?;
        if off.checked_add(len).is_none_or(|end| end > cap) {
            return Err(CommError::OutOfRange {
                buf: buf.0,
                off,
                len,
                cap,
            });
        }
        Ok(())
    }

    fn local_of(&self, rank: usize) -> usize {
        rank % (self.nranks / self.nodes.iter().max().map_or(1, |m| m + 1))
    }

    fn peak_bw(&self, peer: usize) -> f64 {
        if self.topo.same_socket(self.local, self.local_of(peer)) {
            self.bw_core
        } else {
            self.bw_core / self.inter_socket_bw_penalty
        }
    }

    async fn lock_flow(&self, target: usize, pages: usize) -> (f64, f64) {
        if pages == 0 {
            return (0.0, 0.0);
        }
        let tid = sim_tid();
        let socket = self.topo.socket_of(self.local);
        let id: FlowId = sim_poll("pin:add", move |s: &mut MachineState, _w, now| {
            s.locks[target].update(now);
            let id = s.locks[target].add(tid, socket, pages);
            s.tracer.counter(
                Track::LockServer(target),
                "queue_depth",
                now,
                s.locks[target].concurrency() as f64,
            );
            Poll::Ready(id)
        })
        .await;
        sim_poll("pin:wait", move |s: &mut MachineState, w, now| {
            s.locks[target].update(now);
            if s.locks[target].is_done(id) {
                let attr = s.locks[target].remove_with(id, now, |t, at| w.wake_at(t, at));
                s.tracer.counter(
                    Track::LockServer(target),
                    "queue_depth",
                    now,
                    s.locks[target].concurrency() as f64,
                );
                Poll::Ready(attr)
            } else {
                Poll::Wait {
                    wake_at: Some(s.locks[target].eta(id, now)),
                }
            }
        })
        .await
    }

    async fn flow_via<F>(&self, bytes: usize, peak: f64, pick: F) -> u64
    where
        F: Fn(&mut MachineState) -> &mut crate::fluid::MemSys + Clone + Unpin + 'static,
    {
        self.flow_via_weighted(bytes, peak, 1.0, pick).await
    }

    async fn flow_via_weighted<F>(&self, bytes: usize, peak: f64, weight: f64, pick: F) -> u64
    where
        F: Fn(&mut MachineState) -> &mut crate::fluid::MemSys + Clone + Unpin + 'static,
    {
        if bytes == 0 {
            return 0;
        }
        let tid = sim_tid();
        let start = self.time_ns();
        let pick_add = pick.clone();
        let id: FlowId = sim_poll("flow:add", move |s: &mut MachineState, _w, now| {
            let srv = pick_add(s);
            srv.update(now);
            Poll::Ready(srv.add_weighted(tid, bytes, peak, weight))
        })
        .await;
        sim_poll("flow:wait", move |s: &mut MachineState, w, now| {
            let srv = pick(s);
            srv.update(now);
            if srv.is_done(id) {
                srv.remove_with(id, now, |t, at| w.wake_at(t, at));
                Poll::Ready(())
            } else {
                Poll::Wait {
                    wake_at: Some(srv.eta(id, now)),
                }
            }
        })
        .await;
        self.time_ns() - start
    }

    async fn copy_flow_routed(&self, bytes: usize, peak: f64, inter_socket: bool) -> u64 {
        let node = self.node;
        let weight = if inter_socket { self.qpi_weight } else { 1.0 };
        self.flow_via_weighted(bytes, peak, weight, move |s| &mut s.mems[node])
            .await
    }

    async fn copy_flow(&self, bytes: usize, peak: f64) -> u64 {
        self.copy_flow_routed(bytes, peak, false).await
    }

    async fn fault_gate(&mut self, peer: Option<usize>, op: FaultOp, len: usize) -> FaultDecision {
        if !self.fault.on() {
            return FaultDecision::Allow;
        }
        let d = self.fault.decide(&FaultSite {
            rank: self.rank,
            peer,
            op,
            len,
        });
        let d = if op.is_cma() { d } else { d.no_partial() };
        if let FaultDecision::Delay { ns } = d {
            sim_advance::<MachineState>(ns).await;
            return FaultDecision::Allow;
        }
        d
    }

    /// Kernel-assisted transfer with separately controllable pin/copy
    /// extents — see [`crate::SimComm::cma_transfer`].
    #[allow(clippy::too_many_arguments)]
    pub async fn cma_transfer(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        remote_len: usize,
        copy_len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        let op = match dir {
            CmaDir::Read => FaultOp::CmaRead,
            CmaDir::Write => FaultOp::CmaWrite,
        };
        match self
            .fault_gate(Some(token.rank as usize), op, copy_len)
            .await
        {
            FaultDecision::Allow | FaultDecision::Delay { .. } => {
                self.cma_transfer_inner(
                    token, remote_off, local, local_off, remote_len, copy_len, dir,
                )
                .await
            }
            FaultDecision::Fail(e) => {
                // The failed syscall still enters and exits the kernel; an
                // empty transfer charges exactly that.
                self.cma_transfer_inner(token, remote_off, local, local_off, 0, 0, dir)
                    .await?;
                Err(e)
            }
            FaultDecision::Truncate { got } => {
                let got = got.min(copy_len);
                self.cma_transfer_inner(token, remote_off, local, local_off, got, got, dir)
                    .await?;
                Err(CommError::Truncated {
                    wanted: copy_len,
                    got,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    async fn cma_transfer_inner(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        remote_len: usize,
        copy_len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        assert!(copy_len <= remote_len, "cannot copy more than is pinned");
        let peer = token.rank as usize;
        let me = self.rank;
        let traced = self.tracer.on();

        // 1. Syscall entry/exit.
        let t0 = if traced { self.time_ns() } else { 0 };
        sim_advance::<MachineState>(self.t_syscall).await;
        let t_sys = self.t_syscall as f64;
        sim_with_state(move |s: &mut MachineState, _| {
            s.stats[me].syscall_ns += t_sys;
            s.stats[me].cma_ops += 1;
        });
        if traced {
            self.tracer
                .span(Track::Rank(me), "syscall", t0, t_sys, 0, None);
        }

        if peer >= self.nranks {
            return Err(CommError::BadRank(peer));
        }
        if self.nodes[peer] != self.node {
            return Err(CommError::Protocol(format!(
                "kernel-assisted transfer to rank {peer} crosses nodes ({} -> {})",
                self.node, self.nodes[peer]
            )));
        }
        if remote_len == 0 {
            return Ok(());
        }

        // 2. Permission / capability check against the remote process.
        let t0 = if traced { self.time_ns() } else { 0 };
        sim_advance::<MachineState>(self.t_permcheck).await;
        let t_chk = self.t_permcheck as f64;
        sim_with_state(move |s: &mut MachineState, _| s.stats[me].check_ns += t_chk);
        if traced {
            self.tracer
                .span(Track::Rank(me), "check", t0, t_chk, 0, None);
        }

        let exposed_len = sim_with_state(|s: &mut MachineState, _| {
            let h = &s.heaps[peer];
            if h.is_exposed(token.token) {
                h.len_of(token.token)
            } else {
                None
            }
        });
        let Some(rcap) = exposed_len else {
            return Err(CommError::PermissionDenied);
        };
        if remote_off
            .checked_add(remote_len)
            .is_none_or(|end| end > rcap)
        {
            return Err(CommError::OutOfRange {
                buf: token.token,
                off: remote_off,
                len: remote_len,
                cap: rcap,
            });
        }
        self.check_local(local, local_off, copy_len)?;

        // 3. Pin + copy in batches (get_user_pages a batch, copy it).
        let pages_total = remote_len.div_ceil(self.page_size);
        let batch = self.pin_batch_pages.max(1);
        let peak = self.peak_bw(peer);
        let inter_socket = !self.topo.same_socket(self.local, self.local_of(peer));
        let mut page_at = 0usize;
        let mut copied = 0usize;
        while page_at < pages_total {
            let pages_now = batch.min(pages_total - page_at);
            let tb = if traced { self.time_ns() } else { 0 };
            let (lock_ns, pin_ns) = self.lock_flow(peer, pages_now).await;
            sim_with_state(move |s: &mut MachineState, _| {
                s.stats[me].lock_ns += lock_ns;
                s.stats[me].pin_ns += pin_ns;
            });
            if traced {
                self.tracer
                    .span(Track::Rank(me), "lock", tb, lock_ns, 0, None);
                self.tracer.span(
                    Track::Rank(me),
                    "pin",
                    tb.saturating_add(lock_ns as u64),
                    pin_ns,
                    0,
                    None,
                );
            }
            let batch_end_byte = ((page_at + pages_now) * self.page_size).min(remote_len);
            let copy_now = batch_end_byte.min(copy_len).saturating_sub(copied);
            if copy_now > 0 {
                let tc = if traced { self.time_ns() } else { 0 };
                let wall = self.copy_flow_routed(copy_now, peak, inter_socket).await as f64;
                sim_with_state(move |s: &mut MachineState, _| s.stats[me].copy_ns += wall);
                if traced {
                    self.tracer
                        .span(Track::Rank(me), "copy", tc, wall, copy_now as u64, None);
                }
                copied += copy_now;
            }
            page_at += pages_now;
        }

        // 4. Move the actual bytes (correctness plane; phantom-aware).
        if copy_len > 0 {
            sim_with_state(|s: &mut MachineState, _| match dir {
                CmaDir::Read => {
                    if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                        let src = s.heaps[peer]
                            .extract(token.token, remote_off, copy_len)
                            .expect("range checked above");
                        s.heaps[me].write(local.0, local_off, &src);
                    }
                    s.stats[me].bytes_read += copy_len as u64;
                }
                CmaDir::Write => {
                    if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                        let src = s.heaps[me]
                            .extract(local.0, local_off, copy_len)
                            .expect("range checked above");
                        s.heaps[peer].write(token.token, remote_off, &src);
                    }
                    s.stats[me].bytes_written += copy_len as u64;
                }
            });
        }
        Ok(())
    }

    async fn shm_fallback_transfer(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        let peer = token.rank as usize;
        let me = self.rank;
        if peer >= self.nranks {
            return Err(CommError::BadRank(peer));
        }
        if self.nodes[peer] != self.node {
            return Err(CommError::Protocol(format!(
                "shared-memory fallback to rank {peer} crosses nodes ({} -> {})",
                self.node, self.nodes[peer]
            )));
        }
        let op = match dir {
            CmaDir::Read => FaultOp::FallbackRead,
            CmaDir::Write => FaultOp::FallbackWrite,
        };
        if let FaultDecision::Fail(e) = self.fault_gate(Some(peer), op, len).await {
            return Err(e);
        }
        let exposed_len = sim_with_state(|s: &mut MachineState, _| {
            let h = &s.heaps[peer];
            if h.is_exposed(token.token) {
                h.len_of(token.token)
            } else {
                None
            }
        });
        let Some(rcap) = exposed_len else {
            return Err(CommError::PermissionDenied);
        };
        if remote_off.checked_add(len).is_none_or(|end| end > rcap) {
            return Err(CommError::OutOfRange {
                buf: token.token,
                off: remote_off,
                len,
                cap: rcap,
            });
        }
        self.check_local(local, local_off, len)?;
        if len == 0 {
            return Ok(());
        }
        sim_with_state(move |s: &mut MachineState, _| {
            s.transport.fallback_ops += 1;
            s.transport.fallback_bytes += len as u64;
        });
        let traced = self.tracer.on();
        let peak = self.peak_bw(peer);
        let inter = !self.topo.same_socket(self.local, self.local_of(peer));
        // First copy: peer's memory ↔ shared staging.
        let t0 = if traced { self.time_ns() } else { 0 };
        let w1 = self.copy_flow_routed(len, peak, inter).await as f64;
        sim_with_state(move |s: &mut MachineState, _| s.stats[me].copy_ns += w1);
        if traced {
            self.tracer
                .span(Track::Rank(me), "copy", t0, w1, len as u64, None);
        }
        // Second copy: staging ↔ local buffer (same socket).
        let t1 = if traced { self.time_ns() } else { 0 };
        let w2 = self.copy_flow(len, self.bw_core).await as f64;
        sim_with_state(move |s: &mut MachineState, _| s.stats[me].copy_ns += w2);
        if traced {
            self.tracer
                .span(Track::Rank(me), "copy", t1, w2, len as u64, None);
        }
        // Data plane (phantom-aware), same accounting as the CMA path.
        sim_with_state(move |s: &mut MachineState, _| match dir {
            CmaDir::Read => {
                if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                    let src = s.heaps[peer]
                        .extract(token.token, remote_off, len)
                        .expect("range checked above");
                    s.heaps[me].write(local.0, local_off, &src);
                }
                s.stats[me].bytes_read += len as u64;
            }
            CmaDir::Write => {
                if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                    let src = s.heaps[me]
                        .extract(local.0, local_off, len)
                        .expect("range checked above");
                    s.heaps[peer].write(token.token, remote_off, &src);
                }
                s.stats[me].bytes_written += len as u64;
            }
        });
        Ok(())
    }

    /// Allocate `len` bytes on this rank's heap.
    pub fn alloc(&mut self, len: usize) -> BufId {
        let me = self.rank;
        BufId(sim_with_state(move |s: &mut MachineState, _| {
            s.heaps[me].alloc(len)
        }))
    }

    /// Free a buffer.
    pub fn free(&mut self, buf: BufId) -> Result<()> {
        let me = self.rank;
        if sim_with_state(move |s: &mut MachineState, _| s.heaps[me].free(buf.0)) {
            Ok(())
        } else {
            Err(CommError::InvalidBuffer(buf.0))
        }
    }

    /// Length of a local buffer.
    pub fn buf_len(&self, buf: BufId) -> Result<usize> {
        let me = self.rank;
        sim_with_state(move |s: &mut MachineState, _| s.heaps[me].len_of(buf.0))
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    /// Write into a local buffer (no virtual-time cost, as
    /// [`kacc_comm::Comm::write_local`]).
    pub fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.check_local(buf, off, data.len())?;
        let me = self.rank;
        let data = data.to_vec();
        sim_with_state(move |s: &mut MachineState, _| {
            s.heaps[me].write(buf.0, off, &data);
        });
        Ok(())
    }

    /// Read from a local buffer (no virtual-time cost).
    pub fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.check_local(buf, off, out.len())?;
        let me = self.rank;
        let len = out.len();
        let data = sim_with_state(move |s: &mut MachineState, _| {
            s.heaps[me]
                .extract(buf.0, off, len)
                .expect("range checked above")
        });
        out.copy_from_slice(&data);
        Ok(())
    }

    /// Allocate and fill a buffer — the polled mirror of
    /// [`kacc_comm::CommExt::alloc_with`].
    pub fn alloc_with(&mut self, data: &[u8]) -> Result<BufId> {
        let buf = self.alloc(data.len());
        self.write_local(buf, 0, data)?;
        Ok(buf)
    }

    /// Read a whole buffer — the polled mirror of
    /// [`kacc_comm::CommExt::read_all`].
    pub fn read_all(&self, buf: BufId) -> Result<Vec<u8>> {
        let len = self.buf_len(buf)?;
        let mut out = vec![0u8; len];
        self.read_local(buf, 0, &mut out)?;
        Ok(out)
    }

    /// Local memcpy charged to memory bandwidth.
    pub async fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.check_local(src, src_off, len)?;
        self.check_local(dst, dst_off, len)?;
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let wall = self.copy_flow(len, self.bw_core).await;
        self.tracer.span(
            Track::Rank(self.rank),
            "copy_local",
            t0,
            wall as f64,
            len as u64,
            None,
        );
        let me = self.rank;
        sim_with_state(move |s: &mut MachineState, _| {
            if !s.heaps[me].is_phantom(src.0) && !s.heaps[me].is_phantom(dst.0) {
                let data = s.heaps[me]
                    .extract(src.0, src_off, len)
                    .expect("range checked above");
                s.heaps[me].write(dst.0, dst_off, &data);
            }
        });
        Ok(())
    }

    /// Expose a buffer for kernel-assisted access.
    pub async fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        if let FaultDecision::Fail(e) = self.fault_gate(None, FaultOp::Expose, 0).await {
            return Err(e);
        }
        let me = self.rank;
        if sim_with_state(move |s: &mut MachineState, _| s.heaps[me].expose(buf.0)) {
            Ok(RemoteToken {
                rank: me as u64,
                token: buf.0,
            })
        } else {
            Err(CommError::InvalidBuffer(buf.0))
        }
    }

    /// Kernel-assisted read (`process_vm_readv`).
    pub async fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.cma_transfer(token, remote_off, dst, dst_off, len, len, CmaDir::Read)
            .await
    }

    /// Kernel-assisted write (`process_vm_writev`).
    pub async fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.cma_transfer(token, remote_off, src, src_off, len, len, CmaDir::Write)
            .await
    }

    /// Small-message control-plane send.
    pub async fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        if to >= self.nranks {
            return Err(CommError::BadRank(to));
        }
        if let FaultDecision::Fail(e) = self
            .fault_gate(Some(to), FaultOp::CtrlSend, data.len())
            .await
        {
            return Err(e);
        }
        let start = self.time_ns();
        // Sender-side occupancy: enqueue bookkeeping plus the copy of the
        // payload into the shared slot (or NIC doorbell + inline copy).
        let occupancy = (0.3 * self.sm_msg_ns + 0.5 * data.len() as f64 * self.sm_byte_ns) as u64;
        sim_advance::<MachineState>(occupancy).await;
        let latency = if self.nodes[to] == self.node {
            self.sm_msg_ns + data.len() as f64 * self.sm_byte_ns
        } else {
            self.net_alpha_ns + data.len() as f64 / self.net_bw
        };
        let arrival = start + latency as u64;
        let me = self.rank;
        let payload = data.to_vec();
        sim_poll("ctrl:send", move |s: &mut MachineState, w, _now| {
            s.mail
                .deposit(w, to, me, tag.0 as u64, arrival, payload.clone());
            Poll::Ready(())
        })
        .await;
        if self.tracer.on() {
            let dur = (self.time_ns() - start) as f64;
            self.tracer.span(
                Track::Rank(me),
                "ctrl_send",
                start,
                dur,
                data.len() as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    /// Small-message control-plane receive (blocking in virtual time).
    pub async fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0).await {
            return Err(e);
        }
        let me = self.rank;
        let tid = sim_tid();
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let payload = sim_poll("ctrl:recv", move |s: &mut MachineState, _w, now| {
            s.mail.take(tid, me, from, tag.0 as u64, now)
        })
        .await;
        if self.tracer.on() {
            let dur = (self.time_ns() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "ctrl_recv",
                t0,
                dur,
                payload.len() as u64,
                tag.class(),
            );
        }
        Ok(payload)
    }

    /// 0-byte notification — the polled mirror of
    /// [`kacc_comm::CommExt::notify`].
    pub async fn notify(&mut self, to: usize, tag: Tag) -> Result<()> {
        self.ctrl_send(to, tag, &[]).await
    }

    /// Wait for a 0-byte notification — the polled mirror of
    /// [`kacc_comm::CommExt::wait_notify`].
    pub async fn wait_notify(&mut self, from: usize, tag: Tag) -> Result<()> {
        let msg = self.ctrl_recv(from, tag).await?;
        if !msg.is_empty() {
            return Err(CommError::Protocol(format!(
                "expected 0-byte notification from rank {from}, got {} bytes",
                msg.len()
            )));
        }
        Ok(())
    }

    /// Bulk shared-memory send.
    pub async fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if to >= self.nranks {
            return Err(CommError::BadRank(to));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::ShmSend, len).await {
            return Err(e);
        }
        self.check_local(src, off, len)?;
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let cross_node = self.nodes[to] != self.node;
        if cross_node {
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").egress[node]
            })
            .await;
        } else {
            // First copy: local buffer → shared staging.
            self.copy_flow(len, self.bw_core).await;
        }
        let me = self.rank;
        let payload = {
            let mut out = vec![0u8; len];
            self.read_local(src, off, &mut out)?;
            out
        };
        let arrival = self.time_ns()
            + if cross_node {
                self.net_alpha_ns as u64
            } else {
                self.sm_msg_ns as u64
            };
        let key = (1u64 << 32) | tag.0 as u64;
        sim_poll("shm:post", move |s: &mut MachineState, w, _now| {
            s.transport.shm_ops += 1;
            s.transport.shm_bytes += len as u64;
            s.mail.deposit(w, to, me, key, arrival, payload.clone());
            Poll::Ready(())
        })
        .await;
        if self.tracer.on() {
            let dur = (self.time_ns() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_send",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    /// Bulk shared-memory receive.
    pub async fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len).await {
            return Err(e);
        }
        self.check_local(dst, off, len)?;
        let me = self.rank;
        let tid = sim_tid();
        let key = (1u64 << 32) | tag.0 as u64;
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let payload = sim_poll("shm:wait", move |s: &mut MachineState, _w, now| {
            s.mail.take(tid, me, from, key, now)
        })
        .await;
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        if self.nodes[from] != self.node {
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").ingress[node]
            })
            .await;
        } else {
            let peak = self.peak_bw(from);
            let inter = !self.topo.same_socket(self.local, self.local_of(from));
            self.copy_flow_routed(len, peak, inter).await;
        }
        self.write_local(dst, off, &payload)?;
        if self.tracer.on() {
            let dur = (self.time_ns() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_recv",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    /// Control-plane receive with a deadline; `Ok(None)` on timeout.
    pub async fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0).await {
            return Err(e);
        }
        let me = self.rank;
        let tid = sim_tid();
        let deadline = self.time_ns().saturating_add(timeout_ns);
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let payload = sim_poll("ctrl:recv", move |s: &mut MachineState, _w, now| {
            match s.mail.take(tid, me, from, tag.0 as u64, now) {
                Poll::Ready(p) => Poll::Ready(Some(p)),
                Poll::Wait { .. } if now >= deadline => {
                    s.mail.unregister(me, from, tag.0 as u64, tid);
                    Poll::Ready(None)
                }
                Poll::Wait { wake_at } => Poll::Wait {
                    wake_at: Some(wake_at.map_or(deadline, |a| a.min(deadline))),
                },
            }
        })
        .await;
        if self.tracer.on() {
            let dur = (self.time_ns() - t0) as f64;
            let bytes = payload.as_ref().map_or(0, Vec::len) as u64;
            self.tracer
                .span(Track::Rank(me), "ctrl_recv", t0, dur, bytes, tag.class());
        }
        Ok(payload)
    }

    /// Bulk receive with a deadline; `Ok(false)` on timeout.
    #[allow(clippy::too_many_arguments)]
    pub async fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len).await {
            return Err(e);
        }
        self.check_local(dst, off, len)?;
        let me = self.rank;
        let tid = sim_tid();
        let key = (1u64 << 32) | tag.0 as u64;
        let deadline = self.time_ns().saturating_add(timeout_ns);
        let t0 = if self.tracer.on() { self.time_ns() } else { 0 };
        let payload = sim_poll("shm:wait", move |s: &mut MachineState, _w, now| {
            match s.mail.take(tid, me, from, key, now) {
                Poll::Ready(p) => Poll::Ready(Some(p)),
                Poll::Wait { .. } if now >= deadline => {
                    s.mail.unregister(me, from, key, tid);
                    Poll::Ready(None)
                }
                Poll::Wait { wake_at } => Poll::Wait {
                    wake_at: Some(wake_at.map_or(deadline, |a| a.min(deadline))),
                },
            }
        })
        .await;
        let Some(payload) = payload else {
            return Ok(false);
        };
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        if self.nodes[from] != self.node {
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").ingress[node]
            })
            .await;
        } else {
            let peak = self.peak_bw(from);
            let inter = !self.topo.same_socket(self.local, self.local_of(from));
            self.copy_flow_routed(len, peak, inter).await;
        }
        self.write_local(dst, off, &payload)?;
        if self.tracer.on() {
            let dur = (self.time_ns() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_recv",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(true)
    }

    /// Charge `ns` of virtual time (retry backoff etc.).
    pub async fn sleep_ns(&mut self, ns: u64) {
        sim_advance::<MachineState>(ns).await;
    }

    /// Two-copy fallback read — see
    /// [`kacc_comm::Comm::shm_fallback_read`].
    pub async fn shm_fallback_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.shm_fallback_transfer(token, remote_off, dst, dst_off, len, CmaDir::Read)
            .await
    }

    /// Two-copy fallback write — see
    /// [`kacc_comm::Comm::shm_fallback_write`].
    pub async fn shm_fallback_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.shm_fallback_transfer(token, remote_off, src, src_off, len, CmaDir::Write)
            .await
    }
}

/// Dissemination barrier over the polled control plane — the mirror of
/// [`kacc_comm::smcoll::sm_barrier`] (same tags, same rounds, same
/// message sequence).
pub async fn sm_barrier_polled(comm: &mut PolledComm) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let tag = Tag::internal(kacc_comm::smcoll::class::BARRIER, round);
        comm.notify((me + dist) % p, tag).await?;
        comm.wait_notify((me + p - dist) % p, tag).await?;
        dist <<= 1;
        round += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Harness: run one async body per rank on the polled engine.
// ---------------------------------------------------------------------

/// Run `f` on every rank of a simulated `nranks`-process node with the
/// thread-free engine — the polled mirror of [`crate::run_team`]. `f`
/// receives the rank and returns the rank's async body; the body should
/// construct its endpoint with [`PolledComm::new`].
pub fn run_polled_team<R, F, Fut>(arch: &ArchProfile, nranks: usize, f: F) -> (TeamRun, Vec<R>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let (run, results, _) =
        run_polled_machine_full(MachineState::new(arch.clone(), nranks), false, true, f);
    (run, results)
}

/// Phantom-buffer variant — the polled mirror of
/// [`crate::run_team_phantom`].
pub fn run_polled_team_phantom<R, F, Fut>(
    arch: &ArchProfile,
    nranks: usize,
    f: F,
) -> (TeamRun, Vec<R>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let (run, results, _) = run_polled_machine_full(
        MachineState::cluster_opts(arch.clone(), 1, nranks, None, true),
        false,
        true,
        f,
    );
    (run, results)
}

/// Traced variant — the polled mirror of [`crate::run_team_traced`].
pub fn run_polled_team_traced<R, F, Fut>(
    arch: &ArchProfile,
    nranks: usize,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    run_polled_machine_full(MachineState::new(arch.clone(), nranks), true, true, f)
}

/// Fault-injecting variant — the polled mirror of
/// [`crate::run_team_faulty`].
pub fn run_polled_team_faulty<R, F, Fut>(
    arch: &ArchProfile,
    nranks: usize,
    hook: FaultHook,
    f: F,
) -> (TeamRun, Vec<R>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let mut state = MachineState::new(arch.clone(), nranks);
    state.fault = hook;
    let (run, results, _) = run_polled_machine_full(state, false, true, f);
    (run, results)
}

/// Fault-injecting traced variant — the polled mirror of
/// [`crate::run_team_faulty_traced`].
pub fn run_polled_team_faulty_traced<R, F, Fut>(
    arch: &ArchProfile,
    nranks: usize,
    hook: FaultHook,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let mut state = MachineState::new(arch.clone(), nranks);
    state.fault = hook;
    run_polled_machine_full(state, true, true, f)
}

/// Cluster variant — the polled mirror of [`crate::run_cluster`].
pub fn run_polled_cluster<R, F, Fut>(
    arch: &ArchProfile,
    nodes: usize,
    ranks_per_node: usize,
    fabric: FabricParams,
    f: F,
) -> (TeamRun, Vec<R>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let (run, results, _) = run_polled_machine_full(
        MachineState::cluster(arch.clone(), nodes, ranks_per_node, Some(fabric)),
        false,
        true,
        f,
    );
    (run, results)
}

/// The polled mirror of `run_machine_full` in [`crate::team`]: one
/// buffered tracer shared by the scheduler and the machine model, one
/// task per rank, [`TeamRun`] assembled from the same fields.
pub fn run_polled_machine_full<R, F, Fut>(
    mut state: MachineState,
    trace: bool,
    fast_path: bool,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(usize) -> Fut + 'static,
    Fut: Future<Output = R> + 'static,
    R: 'static,
{
    let capture = trace.then(|| {
        let (tracer, buf) = Tracer::buffered();
        state.tracer = tracer.clone();
        (tracer, buf)
    });
    let nranks = state.nranks;
    let mut sim = PolledSim::new(state);
    sim.set_fast_path(fast_path);
    if let Some((tracer, _)) = &capture {
        sim.set_tracer(tracer.clone());
    }
    let f = Rc::new(f);
    let results: Rc<RefCell<Vec<Option<R>>>> =
        Rc::new(RefCell::new((0..nranks).map(|_| None).collect()));
    for rank in 0..nranks {
        let f = Rc::clone(&f);
        let results = Rc::clone(&results);
        sim.spawn(move |tid| async move {
            debug_assert_eq!(tid, rank, "tasks spawn in rank order");
            let r = f(rank).await;
            results.borrow_mut()[rank] = Some(r);
        });
    }
    let report = sim.run();
    let trace = capture.map(|(_, buf)| buf.take()).unwrap_or_default();
    let st = report.state;
    let run = crate::team::finish_team_run(
        &st,
        report.end_time,
        report.finish_times.clone(),
        report.events,
        report.metrics,
    );
    let results = Rc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("rank tasks done"))
        .into_inner();
    (
        run,
        results
            .into_iter()
            .map(|r| r.expect("every rank returned"))
            .collect(),
        trace,
    )
}

/// Aggregate stats helper mirroring [`TeamRun::total_stats`] — re-export
/// for polled-engine callers that only import this module.
pub fn total_stats(run: &TeamRun) -> RankStats {
    run.total_stats()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::team::{run_team, run_team_traced};
    use kacc_comm::{Comm, CommExt};

    /// The team-harness smoke program (two-rank CMA read) expressed for
    /// both engines; every observable must be bitwise-identical.
    #[test]
    fn cma_read_matches_threads_engine() {
        let arch = ArchProfile::broadwell();
        let (t_run, t_results) = run_team(&arch, 2, |comm| {
            if comm.rank() == 0 {
                let buf = comm.alloc(8192);
                comm.write_local(buf, 0, &[0xAB; 8192]).unwrap();
                let tok = comm.expose(buf).unwrap();
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes()).unwrap();
                comm.wait_notify(1, Tag::user(2)).unwrap();
                Vec::new()
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let tok = RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(8192);
                comm.cma_read(tok, 0, dst, 0, 8192).unwrap();
                comm.notify(0, Tag::user(2)).unwrap();
                comm.read_all(dst).unwrap()
            }
        });
        let (p_run, p_results) = run_polled_team(&arch, 2, |rank| async move {
            let mut comm = PolledComm::new(rank);
            if rank == 0 {
                let buf = comm.alloc(8192);
                comm.write_local(buf, 0, &[0xAB; 8192]).unwrap();
                let tok = comm.expose(buf).await.unwrap();
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes())
                    .await
                    .unwrap();
                comm.wait_notify(1, Tag::user(2)).await.unwrap();
                Vec::new()
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).await.unwrap();
                let tok = RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(8192);
                comm.cma_read(tok, 0, dst, 0, 8192).await.unwrap();
                comm.notify(0, Tag::user(2)).await.unwrap();
                comm.read_all(dst).unwrap()
            }
        });
        assert_eq!(t_results, p_results);
        assert_eq!(t_run, p_run);
    }

    #[test]
    fn contended_one_to_all_matches_threads_engine_traced() {
        // Many readers on one exposed buffer: lock-server contention,
        // fluid-server wake storms, and tracing all active at once.
        let arch = ArchProfile::knl();
        let eta = 16 * 1024;
        let readers = 6usize;
        let threads = || {
            run_team_traced(&arch, readers + 1, move |comm| {
                if comm.rank() == 0 {
                    let buf = comm.alloc(eta * readers);
                    let tok = comm.expose(buf).unwrap();
                    for r in 1..=readers {
                        comm.ctrl_send(r, Tag::user(1), &tok.to_bytes()).unwrap();
                    }
                    for r in 1..=readers {
                        comm.wait_notify(r, Tag::user(2)).unwrap();
                    }
                    0u64
                } else {
                    let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                    let tok = RemoteToken::from_bytes(&raw).unwrap();
                    let dst = comm.alloc(eta);
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, (comm.rank() - 1) * eta, dst, 0, eta)
                        .unwrap();
                    let d = comm.time_ns() - t0;
                    comm.notify(0, Tag::user(2)).unwrap();
                    d
                }
            })
        };
        let polled = || {
            run_polled_team_traced(&arch, readers + 1, move |rank| async move {
                let mut comm = PolledComm::new(rank);
                if rank == 0 {
                    let buf = comm.alloc(eta * readers);
                    let tok = comm.expose(buf).await.unwrap();
                    for r in 1..=readers {
                        comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                            .await
                            .unwrap();
                    }
                    for r in 1..=readers {
                        comm.wait_notify(r, Tag::user(2)).await.unwrap();
                    }
                    0u64
                } else {
                    let raw = comm.ctrl_recv(0, Tag::user(1)).await.unwrap();
                    let tok = RemoteToken::from_bytes(&raw).unwrap();
                    let dst = comm.alloc(eta);
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, (rank - 1) * eta, dst, 0, eta)
                        .await
                        .unwrap();
                    let d = comm.time_ns() - t0;
                    comm.notify(0, Tag::user(2)).await.unwrap();
                    d
                }
            })
        };
        let (t_run, t_durs, t_trace) = threads();
        let (p_run, p_durs, p_trace) = polled();
        assert_eq!(t_durs, p_durs);
        assert_eq!(t_run, p_run);
        assert_eq!(
            kacc_trace::chrome_trace_json(&t_trace),
            kacc_trace::chrome_trace_json(&p_trace),
            "engines diverged in the event stream"
        );
    }

    #[test]
    fn barrier_matches_threads_engine() {
        let arch = ArchProfile::broadwell();
        let (t_run, _) = run_team(&arch, 8, |comm| {
            kacc_comm::smcoll::sm_barrier(comm).unwrap();
            comm.time_ns()
        });
        let (p_run, _) = run_polled_team(&arch, 8, |rank| async move {
            let mut comm = PolledComm::new(rank);
            sm_barrier_polled(&mut comm).await.unwrap();
            comm.time_ns()
        });
        assert_eq!(t_run, p_run);
    }

    #[test]
    fn cross_node_shm_send_matches_threads_engine() {
        use crate::team::run_cluster;
        let arch = ArchProfile::broadwell();
        let fabric = arch.default_fabric();
        let body_threads = |comm: &mut crate::SimComm| {
            let me = comm.rank();
            let p = comm.size();
            let buf = comm.alloc(4096);
            comm.write_local(buf, 0, &[me as u8; 4096]).unwrap();
            let dst = comm.alloc(4096);
            let peer = (me + p / 2) % p;
            if me < p / 2 {
                comm.shm_send_data(peer, Tag::user(3), buf, 0, 4096)
                    .unwrap();
                comm.shm_recv_data(peer, Tag::user(4), dst, 0, 4096)
                    .unwrap();
            } else {
                comm.shm_recv_data(peer, Tag::user(3), dst, 0, 4096)
                    .unwrap();
                comm.shm_send_data(peer, Tag::user(4), buf, 0, 4096)
                    .unwrap();
            }
            comm.read_all(dst).unwrap()[0]
        };
        let (t_run, t_res) = run_cluster(&arch, 2, 2, fabric.clone(), body_threads);
        let (p_run, p_res) = run_polled_cluster(&arch, 2, 2, fabric, |rank| async move {
            let mut comm = PolledComm::new(rank);
            let me = comm.rank();
            let p = comm.size();
            let buf = comm.alloc(4096);
            comm.write_local(buf, 0, &[me as u8; 4096]).unwrap();
            let dst = comm.alloc(4096);
            let peer = (me + p / 2) % p;
            if me < p / 2 {
                comm.shm_send_data(peer, Tag::user(3), buf, 0, 4096)
                    .await
                    .unwrap();
                comm.shm_recv_data(peer, Tag::user(4), dst, 0, 4096)
                    .await
                    .unwrap();
            } else {
                comm.shm_recv_data(peer, Tag::user(3), dst, 0, 4096)
                    .await
                    .unwrap();
                comm.shm_send_data(peer, Tag::user(4), buf, 0, 4096)
                    .await
                    .unwrap();
            }
            comm.read_all(dst).unwrap()[0]
        });
        assert_eq!(t_res, p_res);
        assert_eq!(t_run, p_run);
    }
}
