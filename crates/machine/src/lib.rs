#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Deterministic simulation of a multi-/many-core node's kernel-assisted
//! copy path.
//!
//! The paper's central observation is that `process_vm_readv`-style
//! transfers serialize on a per-process page-table lock inside
//! `get_user_pages`, and that this lock's cost inflates super-linearly
//! with the number of concurrent readers/writers of the same process
//! (§I-II, Figs 2–6). This crate reproduces that machine behaviour
//! *mechanistically*:
//!
//! * [`fluid::PageLockServer`] — a per-process round-robin grant server
//!   whose per-grant cost grows with the waiter count (cache-line
//!   bouncing) and with socket spread; the γ contention factor *emerges*
//!   from it rather than being postulated;
//! * [`fluid::MemSys`] — processor-shared memory bandwidth with per-core
//!   ceilings and inter-socket derating;
//! * [`simcomm::SimComm`] — a full [`kacc_comm::Comm`] endpoint charging
//!   virtual time for syscalls, permission checks, batched pinning and
//!   copying, plus a two-copy shared-memory data path and a
//!   small-message control plane;
//! * [`team::run_team`] — the harness that runs one closure per rank on
//!   a simulated node and reports per-rank timing and the Fig 4 step
//!   breakdown;
//! * [`probe::SimProbe`] — the Table III parameter-extraction probes.
//!
//! Everything is deterministic: identical inputs produce bit-identical
//! virtual timings on any host.

pub mod fluid;
pub mod polled;
pub mod probe;
pub mod simcomm;
pub mod state;
pub mod team;

pub use polled::{
    run_polled_cluster, run_polled_machine_full, run_polled_team, run_polled_team_faulty,
    run_polled_team_faulty_traced, run_polled_team_phantom, run_polled_team_traced, PolledComm,
};
pub use probe::SimProbe;
pub use simcomm::{CmaDir, SimComm};
pub use state::{MachineState, RankStats};
pub use team::{
    run_cluster, run_team, run_team_faulty, run_team_faulty_traced, run_team_no_fastpath,
    run_team_phantom, run_team_traced, TeamRun,
};
