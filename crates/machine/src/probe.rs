//! Simulated Table III probes: implements `kacc_model::extract::CmaProbe`
//! on top of the machine simulator.

use crate::simcomm::CmaDir;
use crate::team::run_team;
use kacc_comm::{Comm, CommExt, RemoteToken, Tag};
use kacc_model::extract::{CmaProbe, ProbeSpec};
use kacc_model::ArchProfile;

/// Runs step-isolating `process_vm_readv` probes against a simulated
/// node, mirroring what the paper does on real hardware with degenerate
/// iovec counts.
pub struct SimProbe {
    arch: ArchProfile,
}

impl SimProbe {
    /// Probe the given architecture.
    pub fn new(arch: ArchProfile) -> SimProbe {
        SimProbe { arch }
    }
}

impl CmaProbe for SimProbe {
    fn page_size(&self) -> usize {
        self.arch.page_size
    }

    fn probe(&mut self, spec: ProbeSpec) -> f64 {
        let readers = spec.readers.max(1);
        let remote_len = spec.remote_bytes;
        let copy_len = spec.local_bytes.min(spec.remote_bytes);
        // Rank 0 is the source; ranks 1..=readers each issue one call
        // against a *distinct* region of rank 0's buffer (the Fig 2(c)
        // pattern: same process, different buffers — pure lock
        // contention, no data races).
        let (_, durs) = run_team(&self.arch, readers + 1, move |comm| {
            if comm.rank() == 0 {
                let buf = comm.alloc(remote_len.max(1) * readers);
                let tok = comm
                    .expose(buf)
                    .expect("probe: expose cannot fail on fresh buffer");
                for r in 1..=readers {
                    comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                        .expect("probe: ctrl_send is infallible in-sim");
                }
                for r in 1..=readers {
                    comm.wait_notify(r, Tag::user(2))
                        .expect("probe: notification arrives");
                }
                0u64
            } else {
                let raw = comm
                    .ctrl_recv(0, Tag::user(1))
                    .expect("probe: token message arrives");
                let tok = RemoteToken::from_bytes(&raw).expect("probe: root sends a valid token");
                let dst = comm.alloc(copy_len.max(1));
                let off = (comm.rank() - 1) * remote_len;
                let t0 = comm.time_ns();
                comm.cma_transfer(tok, off, dst, 0, remote_len, copy_len, CmaDir::Read)
                    .expect("probe: transfer succeeds fault-free");
                let d = comm.time_ns() - t0;
                comm.notify(0, Tag::user(2))
                    .expect("probe: notify is infallible in-sim");
                d
            }
        });
        let sum: u64 = durs.iter().skip(1).sum();
        sum as f64 / readers as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_model::extract::{extract_params, measure_gamma};
    use kacc_model::GammaModel;

    #[test]
    fn extraction_recovers_arch_parameters() {
        // The extraction pipeline run against the simulator must recover
        // the Table IV values the profile was built from.
        for arch in [
            ArchProfile::knl(),
            ArchProfile::broadwell(),
            ArchProfile::power8(),
        ] {
            let mut probe = SimProbe::new(arch.clone());
            let ex = extract_params(&mut probe, 100);
            let l_err = (ex.l_ns - arch.l_ns()).abs() / arch.l_ns();
            assert!(
                l_err < 0.05,
                "{}: l {} vs {}",
                arch.name,
                ex.l_ns,
                arch.l_ns()
            );
            let beta_err =
                (ex.beta_ns_per_byte - arch.beta_ns_per_byte()).abs() / arch.beta_ns_per_byte();
            assert!(beta_err < 0.05, "{}: beta mismatch {beta_err}", arch.name);
            // α = T₂ includes one page of lock+pin from the 1-byte probe.
            let alpha_expect = arch.alpha_ns() + arch.l_ns();
            let a_err = (ex.alpha_ns - alpha_expect).abs() / alpha_expect;
            assert!(
                a_err < 0.05,
                "{}: alpha {} vs {}",
                arch.name,
                ex.alpha_ns,
                alpha_expect
            );
        }
    }

    #[test]
    fn measured_gamma_tracks_mechanistic_curve() {
        let arch = ArchProfile::knl();
        let mut probe = SimProbe::new(arch.clone());
        let points = measure_gamma(&mut probe, &[2, 4, 8], &[50, 100]);
        let mech = arch.mechanistic_gamma();
        for pt in &points {
            let expect = mech.eval(pt.c);
            let err = (pt.gamma - expect).abs() / expect;
            assert!(
                err < 0.25,
                "c={}: measured {} vs mechanistic {}",
                pt.c,
                pt.gamma,
                expect
            );
        }
        // And γ grows with c.
        assert!(points.windows(2).all(|w| w[1].gamma > w[0].gamma));
    }

    #[test]
    fn broadwell_gamma_has_inter_socket_knee() {
        // Fig 5(b): noticeable increase beyond 14 concurrent readers on
        // the two-socket Broadwell node.
        let arch = ArchProfile::broadwell();
        let mut probe = SimProbe::new(arch);
        let points = measure_gamma(&mut probe, &[10, 13, 16, 20], &[50]);
        let slope_pre = points[1].gamma / points[0].gamma; // 13/10
        let slope_post = points[2].gamma / points[1].gamma; // 16/13
        assert!(
            slope_post > slope_pre,
            "knee missing: pre {slope_pre} post {slope_post} ({points:?})"
        );
    }

    #[test]
    fn gamma_is_insensitive_to_page_count() {
        // Fig 5: the 10/50/100-page curves coincide.
        let arch = ArchProfile::knl();
        let mut probe = SimProbe::new(arch);
        let g_small = measure_gamma(&mut probe, &[8], &[10]);
        let g_large = measure_gamma(&mut probe, &[8], &[100]);
        let rel = (g_small[0].gamma - g_large[0].gamma).abs() / g_large[0].gamma;
        assert!(rel < 0.15, "gamma should not depend on page count: {rel}");
    }

    #[test]
    fn fitted_gamma_predicts_heldout_concurrency() {
        // Fit on c ∈ {2,4,8,16}, predict c = 32 — the Fig 5 "Best Fit"
        // must extrapolate.
        let arch = ArchProfile::knl();
        let mut probe = SimProbe::new(arch);
        let train = measure_gamma(&mut probe, &[2, 4, 8, 16], &[50]);
        let fit = kacc_model::gamma::fit_gamma(&train).unwrap();
        let test = measure_gamma(&mut probe, &[32], &[50]);
        let predicted = fit.model.eval(32);
        let err = (predicted - test[0].gamma).abs() / test[0].gamma;
        assert!(
            err < 0.2,
            "fit extrapolates poorly: {predicted} vs {}",
            test[0].gamma
        );
        let _ = GammaModel::Unit; // silence unused import in cfg(test)
    }
}
