//! IR-walking schedule costing.
//!
//! `kacc-collectives` compiles every collective into a per-rank schedule
//! of primitive operations. This module prices such a schedule with the
//! §II parameters: the caller lowers each schedule step into a
//! [`CostStep`] (a transport-neutral vocabulary that keeps this crate
//! independent of the IR's defining crate) and [`schedule_cost`] sums the
//! per-step model terms.
//!
//! The walk charges what *this rank* spends inside each primitive:
//! kernel-assisted transfers cost the full `T = α + η·β + l·γ_c·⌈η/s⌉`
//! term, local copies cost `η·memcpy`, blocking control receives cost one
//! small-message hop, and buffered sends are free (they never block the
//! caller). Contention is an input, not inferred: the caller states how
//! many peers concurrently target the same source (`γ_c`'s `c`), exactly
//! as the closed forms in [`crate::predict`] do.

use crate::ModelParams;

/// One schedule step lowered into the model's cost vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostStep {
    /// Kernel-assisted read of `bytes` from a source whose page-table
    /// lock is contended by `contention` concurrent accessors.
    CmaRead {
        /// Bytes transferred.
        bytes: usize,
        /// Concurrent accessors of the source (γ's `c`, ≥ 1).
        contention: usize,
    },
    /// Kernel-assisted write; same cost shape as the read.
    CmaWrite {
        /// Bytes transferred.
        bytes: usize,
        /// Concurrent accessors of the destination (γ's `c`, ≥ 1).
        contention: usize,
    },
    /// Charged local copy of `bytes`.
    Memcpy {
        /// Bytes copied.
        bytes: usize,
    },
    /// Buffered control-plane send (free: never blocks the sender).
    CtrlSend {
        /// Wire bytes (unused by the cost, kept for accounting).
        bytes: usize,
    },
    /// Blocking control-plane receive: one small-message hop.
    CtrlRecv {
        /// Wire bytes received.
        bytes: usize,
    },
    /// 0-byte notification send (free, buffered).
    Notify,
    /// Blocking wait for a 0-byte notification: one empty hop.
    WaitNotify,
    /// Two-copy shared-memory send: descriptor hop + staging copy-in.
    ShmSend {
        /// Bytes staged.
        bytes: usize,
    },
    /// Two-copy shared-memory receive: descriptor hop + staging copy-out.
    ShmRecv {
        /// Bytes copied out.
        bytes: usize,
    },
    /// Element-wise reduction over `bytes`, charged like a local copy.
    Reduce {
        /// Bytes reduced.
        bytes: usize,
    },
    /// Buffer exposure (registration is bookkeeping; free).
    Expose,
}

/// Model cost of one lowered step, in nanoseconds.
pub fn step_cost(m: &ModelParams, step: CostStep) -> f64 {
    match step {
        CostStep::CmaRead { bytes, contention } | CostStep::CmaWrite { bytes, contention } => {
            m.t_cma(bytes, contention.max(1))
        }
        CostStep::Memcpy { bytes } | CostStep::Reduce { bytes } => m.t_memcpy(bytes),
        CostStep::CtrlSend { .. } | CostStep::Notify | CostStep::Expose => 0.0,
        CostStep::CtrlRecv { bytes } => m.t_sm_msg(bytes),
        CostStep::WaitNotify => m.t_sm_msg(0),
        CostStep::ShmSend { bytes } | CostStep::ShmRecv { bytes } => {
            m.t_sm_msg(0) + m.t_memcpy(bytes)
        }
    }
}

/// Total model cost of a lowered schedule: the sum of its step costs
/// (the rank executes its steps strictly in order, so its own time is
/// additive; cross-rank overlap is the *minimum* over ranks of these
/// per-rank walks, which the closed forms in [`crate::predict`]
/// approximate with critical-path expressions).
pub fn schedule_cost(m: &ModelParams, steps: impl IntoIterator<Item = CostStep>) -> f64 {
    steps.into_iter().map(|s| step_cost(m, s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchProfile;

    fn params() -> ModelParams {
        ArchProfile::broadwell().nominal_model()
    }

    #[test]
    fn blocking_steps_cost_and_buffered_steps_are_free() {
        let m = params();
        assert_eq!(step_cost(&m, CostStep::CtrlSend { bytes: 16 }), 0.0);
        assert_eq!(step_cost(&m, CostStep::Notify), 0.0);
        assert_eq!(step_cost(&m, CostStep::Expose), 0.0);
        assert!(step_cost(&m, CostStep::CtrlRecv { bytes: 16 }) > 0.0);
        assert!(step_cost(&m, CostStep::WaitNotify) > 0.0);
        assert_eq!(
            step_cost(
                &m,
                CostStep::CmaRead {
                    bytes: 4096,
                    contention: 1
                }
            ),
            m.t_cma(4096, 1)
        );
    }

    #[test]
    fn cma_cost_is_monotone_in_contention() {
        let m = params();
        let mut prev = 0.0;
        for c in 1..16 {
            let t = step_cost(
                &m,
                CostStep::CmaRead {
                    bytes: 1 << 20,
                    contention: c,
                },
            );
            assert!(t >= prev, "γ must not decrease with contention");
            prev = t;
        }
    }

    #[test]
    fn schedule_cost_is_additive() {
        let m = params();
        let steps = [
            CostStep::CtrlRecv { bytes: 16 },
            CostStep::CmaRead {
                bytes: 65536,
                contention: 3,
            },
            CostStep::Memcpy { bytes: 65536 },
            CostStep::CtrlSend { bytes: 0 },
        ];
        let total = schedule_cost(&m, steps);
        let by_hand: f64 = steps.iter().map(|&s| step_cost(&m, s)).sum();
        assert_eq!(total, by_hand);
    }

    #[test]
    fn shm_steps_charge_hop_plus_copy() {
        let m = params();
        let t = step_cost(&m, CostStep::ShmRecv { bytes: 4096 });
        assert_eq!(t, m.t_sm_msg(0) + m.t_memcpy(4096));
    }
}
