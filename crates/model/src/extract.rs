//! Parameter extraction via step-isolating CMA probes (Table III).
//!
//! The paper measures α, β and l by invoking `process_vm_readv` with
//! degenerate iovec counts so individual kernel steps can be timed:
//!
//! | Operation | Time | Buffer | liovcnt | riovcnt |
//! |---|---|---|---|---|
//! | System call | T₁ | 0 B | 0 | 0 |
//! | Access check | T₂ | 1 B | 0 | 1 B |
//! | Lock+Pin | T₃ | N pages | 0 | N pages |
//! | Copy data | T₄ | N pages | N pages | N pages |
//!
//! with `α = T₂`, `l = (T₃ − T₂)/N`, `β = (T₄ − T₃)/(N·s)`. γ is then
//! recovered by repeating the Lock+Pin probe under concurrency (Fig 5).
//!
//! The probes themselves are transport-specific; this module defines the
//! [`CmaProbe`] interface and the extraction/fitting logic, and
//! `kacc-machine` (simulated) / `kacc-native` (real syscalls) provide the
//! probes.

use crate::gamma::{fit_gamma, GammaFit, GammaPoint};
use kacc_numerics::nlls::NllsError;

/// One probe configuration: `readers` concurrent `process_vm_readv`-like
/// calls against a single source process, each with the given iovec
/// byte totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Total bytes described by the *local* iovec (0 ⇒ no copy happens).
    pub local_bytes: usize,
    /// Total bytes described by the *remote* iovec (0 ⇒ no access check
    /// or pinning happens).
    pub remote_bytes: usize,
    /// Number of concurrent readers issuing the identical call.
    pub readers: usize,
}

impl ProbeSpec {
    /// Table III row 1: syscall cost only.
    pub fn syscall() -> ProbeSpec {
        ProbeSpec {
            local_bytes: 0,
            remote_bytes: 0,
            readers: 1,
        }
    }

    /// Table III row 2: syscall + access check (+1 page pin).
    pub fn access_check() -> ProbeSpec {
        ProbeSpec {
            local_bytes: 0,
            remote_bytes: 1,
            readers: 1,
        }
    }

    /// Table III row 3: syscall + check + lock/pin of `n` pages.
    pub fn lock_pin(n_pages: usize, page_size: usize, readers: usize) -> ProbeSpec {
        ProbeSpec {
            local_bytes: 0,
            remote_bytes: n_pages * page_size,
            readers,
        }
    }

    /// Table III row 4: full transfer of `n` pages.
    pub fn full(n_pages: usize, page_size: usize, readers: usize) -> ProbeSpec {
        let bytes = n_pages * page_size;
        ProbeSpec {
            local_bytes: bytes,
            remote_bytes: bytes,
            readers,
        }
    }
}

/// Something that can execute a probe and report the mean per-call
/// latency in nanoseconds.
pub trait CmaProbe {
    /// Page size of the machine behind this probe.
    fn page_size(&self) -> usize;
    /// Run the probe, returning mean per-call latency (ns) across the
    /// concurrent readers.
    fn probe(&mut self, spec: ProbeSpec) -> f64;
}

/// The measured step times (Table III) and derived parameters.
#[derive(Debug, Clone)]
pub struct ExtractedParams {
    /// T₁: syscall.
    pub t1_ns: f64,
    /// T₂: + access check.
    pub t2_ns: f64,
    /// T₃(N): + lock/pin of `n_pages` pages.
    pub t3_ns: f64,
    /// T₄(N): + copy of `n_pages` pages.
    pub t4_ns: f64,
    /// Page count used for T₃/T₄.
    pub n_pages: usize,
    /// α = T₂.
    pub alpha_ns: f64,
    /// l = (T₃ − T₂) / N.
    pub l_ns: f64,
    /// β = (T₄ − T₃) / (N·s), ns per byte.
    pub beta_ns_per_byte: f64,
}

impl ExtractedParams {
    /// Bandwidth in GB/s implied by β (for Table IV display).
    pub fn bandwidth_gbps(&self) -> f64 {
        1.0 / self.beta_ns_per_byte
    }
}

/// Run the Table III protocol with `n_pages` pages (the paper varies N;
/// one large N suffices once T₃/T₄ are linear in N).
pub fn extract_params(probe: &mut dyn CmaProbe, n_pages: usize) -> ExtractedParams {
    assert!(n_pages >= 1);
    let s = probe.page_size();
    let t1 = probe.probe(ProbeSpec::syscall());
    let t2 = probe.probe(ProbeSpec::access_check());
    let t3 = probe.probe(ProbeSpec::lock_pin(n_pages, s, 1));
    let t4 = probe.probe(ProbeSpec::full(n_pages, s, 1));
    // The paper notes T₄ ≥ T₃ ≥ T₂ ≥ T₁ because each row includes the
    // previous steps. T₂ also pins one page, which we subtract when
    // deriving l from the difference.
    ExtractedParams {
        t1_ns: t1,
        t2_ns: t2,
        t3_ns: t3,
        t4_ns: t4,
        n_pages,
        alpha_ns: t2,
        l_ns: (t3 - t2) / n_pages as f64,
        beta_ns_per_byte: (t4 - t3) / (n_pages * s) as f64,
    }
}

/// Measure γ(c): for each concurrency in `readers`, run the Lock+Pin
/// probe at each page count in `page_counts` and average the inflation
/// relative to the single-reader run (Fig 5 plots the per-page-count
/// curves plus their average).
pub fn measure_gamma(
    probe: &mut dyn CmaProbe,
    readers: &[usize],
    page_counts: &[usize],
) -> Vec<GammaPoint> {
    let s = probe.page_size();
    let mut out = Vec::with_capacity(readers.len());
    for &c in readers {
        let mut acc = 0.0;
        for &n in page_counts {
            let base = probe.probe(ProbeSpec::lock_pin(n, s, 1));
            let contended = probe.probe(ProbeSpec::lock_pin(n, s, c));
            // Remove the non-lock part (syscall + check) before forming
            // the ratio, so γ reflects the lock/pin step alone.
            let check = probe.probe(ProbeSpec::access_check());
            let lock_base = (base - check).max(1e-9);
            let lock_cont = (contended - check).max(1e-9);
            acc += lock_cont / lock_base;
        }
        out.push(GammaPoint {
            c,
            gamma: acc / page_counts.len() as f64,
        });
    }
    out
}

/// Fit the measured γ points with the paper's quadratic form.
pub fn fit_measured_gamma(points: &[GammaPoint]) -> Result<GammaFit, NllsError> {
    fit_gamma(points)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// A synthetic probe that follows the analytic model exactly —
    /// verifies the extraction algebra is self-consistent.
    struct AnalyticProbe {
        alpha_syscall: f64,
        alpha_check: f64,
        l: f64,
        beta: f64,
        page: usize,
        gamma_a: f64,
        gamma_b: f64,
    }

    impl CmaProbe for AnalyticProbe {
        fn page_size(&self) -> usize {
            self.page
        }
        fn probe(&mut self, spec: ProbeSpec) -> f64 {
            let mut t = self.alpha_syscall;
            if spec.remote_bytes > 0 {
                t += self.alpha_check;
                let pages = spec.remote_bytes.div_ceil(self.page) as f64;
                let c = spec.readers as f64;
                let gamma = if spec.readers <= 1 {
                    1.0
                } else {
                    self.gamma_a * c * c + self.gamma_b * c
                };
                t += self.l * gamma * pages;
                let copied = spec.local_bytes.min(spec.remote_bytes);
                t += copied as f64 * self.beta;
            }
            t
        }
    }

    fn probe() -> AnalyticProbe {
        AnalyticProbe {
            alpha_syscall: 900.0,
            alpha_check: 530.0,
            l: 250.0,
            beta: 0.304,
            page: 4096,
            gamma_a: 0.1,
            gamma_b: 1.6,
        }
    }

    #[test]
    fn extraction_recovers_analytic_parameters() {
        let mut p = probe();
        let ex = extract_params(&mut p, 200);
        // α = T₂ = syscall + check + one page of lock (the 1-byte remote
        // iovec pins a page); the paper accepts this approximation, and
        // with N = 200 pages the l estimate is unbiased:
        assert!((ex.l_ns - 250.0).abs() / 250.0 < 0.01, "l = {}", ex.l_ns);
        assert!((ex.beta_ns_per_byte - 0.304).abs() < 1e-6);
        assert!(ex.alpha_ns >= 1430.0, "alpha includes both fixed costs");
        assert!(ex.t4_ns >= ex.t3_ns && ex.t3_ns >= ex.t2_ns && ex.t2_ns >= ex.t1_ns);
    }

    #[test]
    fn gamma_measurement_matches_injected_curve() {
        let mut p = probe();
        let points = measure_gamma(&mut p, &[2, 4, 8, 16, 32], &[10, 50, 100]);
        for pt in &points {
            let c = pt.c as f64;
            let expect = 0.1 * c * c + 1.6 * c;
            // The 1-byte check probe also pins one page, so tolerate a
            // small bias at low page counts.
            assert!(
                (pt.gamma - expect).abs() / expect < 0.15,
                "c={} gamma={} expect={}",
                pt.c,
                pt.gamma,
                expect
            );
        }
        let fit = fit_measured_gamma(&points).unwrap();
        match fit.model {
            crate::gamma::GammaModel::Quadratic { a, b } => {
                assert!((a - 0.1).abs() < 0.05, "a={a}");
                assert!((b - 1.6).abs() < 0.8, "b={b}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn probe_spec_constructors_match_table_iii() {
        let s = ProbeSpec::syscall();
        assert_eq!((s.local_bytes, s.remote_bytes), (0, 0));
        let a = ProbeSpec::access_check();
        assert_eq!((a.local_bytes, a.remote_bytes), (0, 1));
        let l = ProbeSpec::lock_pin(10, 4096, 4);
        assert_eq!(l.remote_bytes, 40960);
        assert_eq!(l.local_bytes, 0);
        assert_eq!(l.readers, 4);
        let f = ProbeSpec::full(10, 4096, 1);
        assert_eq!(f.local_bytes, f.remote_bytes);
    }
}
