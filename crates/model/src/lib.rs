#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Analytical cost model for kernel-assisted collectives (paper §II).
//!
//! The paper models a kernel-assisted transfer of η bytes as
//!
//! ```text
//! T = α + η·β + l·γ_c·⌈η/s⌉
//! ```
//!
//! where α is the per-message startup (syscall + permission check), β the
//! per-byte copy time, `l` the uncontended per-page lock+pin time, `s` the
//! page size, and γ_c the contention factor with `c` concurrent
//! readers/writers of the same source process (γ₁ = 1).
//!
//! This crate contains:
//!
//! * [`arch`] — full architecture profiles (Table V hardware, Table IV
//!   model parameters, and the mechanistic simulator knobs from which the
//!   analytic parameters are extracted),
//! * [`gamma`] — γ(c) models and the Fig 5 NLLS fitting pipeline,
//! * [`params`] — the Table II parameter bundle used by predictions,
//! * [`predict`] — closed-form latency predictions for every collective
//!   algorithm in §IV–V,
//! * [`cost`] — IR-walking costing for compiled schedules (the
//!   compile+execute split in `kacc-collectives`),
//! * [`extract`] — the Table III protocol that recovers α, β, l from
//!   step-isolating `process_vm_readv` probes.

pub mod arch;
pub mod cost;
pub mod extract;
pub mod gamma;
pub mod params;
pub mod predict;

pub use arch::{ArchProfile, FabricParams};
pub use cost::{schedule_cost, step_cost, CostStep};
pub use gamma::GammaModel;
pub use params::ModelParams;
