//! The Table II parameter bundle consumed by the closed-form predictions.

use crate::gamma::GammaModel;
use serde::{Deserialize, Serialize};

/// Parameters of the paper's cost model (Table II), in nanoseconds and
/// bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// α — startup cost per message (syscall + permission check).
    pub alpha_ns: f64,
    /// β — transfer time per byte.
    pub beta_ns_per_byte: f64,
    /// l — time to lock and pin one page without contention.
    pub l_ns: f64,
    /// s — page size in bytes.
    pub page_size: usize,
    /// γ_c — contention factor model.
    pub gamma: GammaModel,
    /// Latency of one small shared-memory control message.
    pub sm_msg_ns: f64,
    /// Per-byte cost of control payloads.
    pub sm_byte_ns: f64,
    /// Per-byte cost of a local `memcpy`.
    pub memcpy_ns_per_byte: f64,
    /// Reciprocal of the node's aggregate memory bandwidth, ns/byte.
    /// Our extension to the paper's model: with `c` concurrent copies
    /// the effective per-byte cost is `max(β, c·node_bw)`. Setting 0
    /// recovers the paper's bandwidth-unaware formulas.
    pub node_bw_ns_per_byte: f64,
}

impl ModelParams {
    /// Cost of one kernel-assisted transfer of `eta` bytes with `c`
    /// concurrent readers/writers of the same source:
    /// `α + η·β + l·γ_c·⌈η/s⌉` (copy shared among `c` copiers too).
    pub fn t_cma(&self, eta: usize, c: usize) -> f64 {
        self.t_cma_shared(eta, c, c)
    }

    /// Like [`ModelParams::t_cma`] but with independent lock concurrency
    /// (readers of the *same* process) and copy concurrency (copies in
    /// flight node-wide). Contention-free exchange patterns have
    /// `lock_c = 1` while every rank still competes for memory
    /// bandwidth.
    ///
    /// Collective steps are synchronized (by the lock server under
    /// contention, by the step structure otherwise), so all `copy_c`
    /// copies overlap and share bandwidth. Setting
    /// `node_bw_ns_per_byte = 0` recovers the paper's bandwidth-unaware
    /// formulas.
    pub fn t_cma_shared(&self, eta: usize, lock_c: usize, copy_c: usize) -> f64 {
        let pages = eta.div_ceil(self.page_size) as f64;
        let serial = self.alpha_ns + self.l_ns * self.gamma.eval(lock_c) * pages;
        serial + eta as f64 * self.beta_shared(copy_c)
    }

    /// Effective per-byte copy cost with `c` concurrent copies.
    pub fn beta_shared(&self, c: usize) -> f64 {
        self.beta_ns_per_byte
            .max(c.max(1) as f64 * self.node_bw_ns_per_byte)
    }

    /// Cost of a local memcpy of `eta` bytes.
    pub fn t_memcpy(&self, eta: usize) -> f64 {
        eta as f64 * self.memcpy_ns_per_byte
    }

    /// Cost of a local memcpy with `c` concurrent copies node-wide.
    pub fn t_memcpy_shared(&self, eta: usize, c: usize) -> f64 {
        eta as f64
            * self
                .memcpy_ns_per_byte
                .max(c.max(1) as f64 * self.node_bw_ns_per_byte)
    }

    /// Cost of one control-plane point-to-point message of `bytes`.
    pub fn t_sm_msg(&self, bytes: usize) -> f64 {
        self.sm_msg_ns + bytes as f64 * self.sm_byte_ns
    }

    /// `T^sm_bcast`: binomial-tree broadcast of a tiny message over `p`
    /// ranks (⌈log₂ p⌉ sequential hop latencies on the critical path).
    pub fn t_sm_bcast(&self, p: usize, bytes: usize) -> f64 {
        ceil_log2(p) as f64 * self.t_sm_msg(bytes)
    }

    /// `T^sm_gather`: binomial gather; the root receives ⌈log₂ p⌉ rounds,
    /// with payload growing along the way — approximated by the hop count
    /// times the mean payload, which is accurate for the tiny messages
    /// this primitive carries.
    pub fn t_sm_gather(&self, p: usize, bytes: usize) -> f64 {
        ceil_log2(p) as f64 * self.t_sm_msg(bytes * p.div_ceil(2))
    }

    /// `T^sm_allgather`: Bruck over ⌈log₂ p⌉ rounds.
    pub fn t_sm_allgather(&self, p: usize, bytes: usize) -> f64 {
        ceil_log2(p) as f64 * self.t_sm_msg(bytes * p.div_ceil(2))
    }

    /// `T^intra_barrier`: dissemination barrier.
    pub fn t_sm_barrier(&self, p: usize) -> f64 {
        ceil_log2(p) as f64 * self.t_sm_msg(0)
    }
}

/// ⌈log₂ p⌉ with ⌈log₂ 1⌉ = 0.
pub fn ceil_log2(p: usize) -> u32 {
    assert!(p > 0);
    (p as u64).next_power_of_two().trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams {
            alpha_ns: 1000.0,
            beta_ns_per_byte: 0.3,
            l_ns: 100.0,
            page_size: 4096,
            gamma: GammaModel::Quadratic { a: 0.1, b: 1.0 },
            sm_msg_ns: 300.0,
            sm_byte_ns: 0.5,
            memcpy_ns_per_byte: 0.3,
            node_bw_ns_per_byte: 0.0,
        }
    }

    #[test]
    fn ceil_log2_table() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn t_cma_components_add_up() {
        let p = params();
        // 8192 bytes = 2 pages, single reader: α + ηβ + 2l.
        let t = p.t_cma(8192, 1);
        assert!((t - (1000.0 + 8192.0 * 0.3 + 2.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn contention_inflates_lock_term_only() {
        let p = params();
        let t1 = p.t_cma(4096, 1);
        let t8 = p.t_cma(4096, 8);
        let gamma8 = p.gamma.eval(8);
        assert!((t8 - t1 - 100.0 * (gamma8 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn partial_page_rounds_up() {
        let p = params();
        assert!(
            p.t_cma(1, 1) > p.alpha_ns + 99.0,
            "one byte still pins one page"
        );
        assert!(
            p.t_cma(4097, 1) - p.t_cma(4096, 1) > 99.0,
            "crossing a page boundary adds a lock"
        );
    }

    #[test]
    fn sm_primitives_scale_logarithmically() {
        let p = params();
        assert_eq!(p.t_sm_bcast(1, 8), 0.0);
        let t64 = p.t_sm_bcast(64, 8);
        let t128 = p.t_sm_bcast(128, 8);
        assert!((t128 / t64 - 7.0 / 6.0).abs() < 1e-9);
        assert!(p.t_sm_barrier(64) > 0.0);
    }
}
