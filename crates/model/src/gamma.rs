//! Contention-factor models γ(c) and the Fig 5 fitting pipeline.
//!
//! γ(c) is the factor by which the per-page lock+pin time inflates when
//! `c` readers (or writers) concurrently target the same source process.
//! γ(1) = 1 by definition. The paper observes (Fig 5) that γ is
//! independent of the page count, super-linear in `c`, and jumps once the
//! reader set spans sockets; it fits γ with nonlinear least squares.

use kacc_numerics::nlls::{levenberg_marquardt, LmOptions, NllsError};
use serde::{Deserialize, Serialize};

/// A γ(c) model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GammaModel {
    /// No contention: γ(c) = 1 for all c. Useful as an ablation.
    Unit,
    /// Quadratic fit γ(c) = a·c² + b·c (+ (1−a−b) so γ(1)=1), the
    /// functional form the paper's Table IV reports.
    Quadratic {
        /// Quadratic coefficient.
        a: f64,
        /// Linear coefficient.
        b: f64,
    },
    /// The closed form implied by the machine simulator's round-robin
    /// page-lock server with cache-line-bounce handoff costs; see
    /// `ArchProfile::mechanistic_gamma`.
    Mechanistic {
        /// Handoff inflation per extra waiter.
        k_bounce: f64,
        /// Extra multiplier once the waiter set spans sockets.
        x_socket: f64,
        /// Reader count at which the set starts spanning sockets (the
        /// first socket's core count under the default mapping).
        socket_knee: usize,
        /// Fraction of the per-page time that is lock (vs pin) and thus
        /// subject to contention.
        lock_weight: f64,
    },
}

impl GammaModel {
    /// Evaluate γ(c). `c` is the number of concurrent readers/writers;
    /// values below 1 are clamped to 1.
    pub fn eval(&self, c: usize) -> f64 {
        let c = c.max(1);
        match *self {
            GammaModel::Unit => 1.0,
            GammaModel::Quadratic { a, b } => {
                let cf = c as f64;
                // Anchor γ(1)=1 exactly: add the residual constant.
                a * cf * cf + b * cf + (1.0 - a - b)
            }
            GammaModel::Mechanistic {
                k_bounce,
                x_socket,
                socket_knee,
                lock_weight,
            } => {
                let cf = c as f64;
                let xs = if c > socket_knee { x_socket } else { 1.0 };
                // Round-robin grant service: each reader's page completes
                // every c grants, and the grant itself (lock handoff +
                // pin, both under the lock like get_user_pages) is
                // inflated by the cache-line bounce on its lock share:
                // γ(c) = c · (1 + w·k_bounce·(c−1)·xs).
                cf * (1.0 + lock_weight * k_bounce * (cf - 1.0) * xs)
            }
        }
    }

    /// γ over a range of concurrencies (convenience for plotting).
    pub fn curve(&self, cs: &[usize]) -> Vec<f64> {
        cs.iter().map(|&c| self.eval(c)).collect()
    }
}

/// One γ observation: `c` concurrent readers produced an observed
/// inflation `gamma` (possibly averaged over several page counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPoint {
    /// Concurrency.
    pub c: usize,
    /// Observed γ.
    pub gamma: f64,
}

/// Result of fitting γ(c) = a·c² + b·c to observations (Fig 5's
/// "Best Fit" line).
#[derive(Debug, Clone)]
pub struct GammaFit {
    /// Fitted model.
    pub model: GammaModel,
    /// Sum of squared residuals.
    pub ssr: f64,
    /// Iterations the NLLS solver used.
    pub iterations: usize,
}

/// Fit the paper's quadratic form with Levenberg–Marquardt.
pub fn fit_gamma(points: &[GammaPoint]) -> Result<GammaFit, NllsError> {
    let xs: Vec<f64> = points.iter().map(|p| p.c as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.gamma).collect();
    let model = |c: f64, p: &[f64]| p[0] * c * c + p[1] * c;
    let report = levenberg_marquardt(model, &xs, &ys, &[0.01, 1.0], LmOptions::default())?;
    Ok(GammaFit {
        model: GammaModel::Quadratic {
            a: report.params[0],
            b: report.params[1],
        },
        ssr: report.ssr,
        iterations: report.iterations,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unit_gamma_is_one_everywhere() {
        for c in [1, 2, 17, 160] {
            assert_eq!(GammaModel::Unit.eval(c), 1.0);
        }
    }

    #[test]
    fn quadratic_anchors_gamma_one() {
        let g = GammaModel::Quadratic { a: 0.1, b: 1.6 };
        assert!((g.eval(1) - 1.0).abs() < 1e-12);
        assert!(g.eval(0) == g.eval(1), "clamped below 1");
    }

    #[test]
    fn mechanistic_is_superlinear_and_kneed() {
        let g = GammaModel::Mechanistic {
            k_bounce: 0.05,
            x_socket: 3.0,
            socket_knee: 14,
            lock_weight: 0.6,
        };
        // Super-linear: γ(2c) > 2 γ(c) once contention dominates.
        assert!(g.eval(64) > 2.0 * g.eval(32) * 0.9);
        // Knee: crossing the socket boundary inflates the slope.
        let before = g.eval(14) / g.eval(13);
        let after = g.eval(15) / g.eval(14);
        assert!(
            after > before,
            "inter-socket knee missing: {before} vs {after}"
        );
        // Monotone.
        for c in 1..100 {
            assert!(g.eval(c + 1) >= g.eval(c));
        }
    }

    #[test]
    fn fit_recovers_synthetic_quadratic() {
        let truth = |c: f64| 0.1 * c * c + 1.6 * c;
        let points: Vec<GammaPoint> = (1..=64)
            .map(|c| GammaPoint {
                c,
                gamma: truth(c as f64),
            })
            .collect();
        let fit = fit_gamma(&points).unwrap();
        match fit.model {
            GammaModel::Quadratic { a, b } => {
                assert!((a - 0.1).abs() < 1e-6);
                assert!((b - 1.6).abs() < 1e-5);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn fit_tracks_mechanistic_curve_reasonably() {
        // The quadratic should approximate the mechanistic curve well on
        // a single-socket machine (pure quadratic growth).
        let mech = GammaModel::Mechanistic {
            k_bounce: 0.11,
            x_socket: 1.0,
            socket_knee: 68,
            lock_weight: 0.6,
        };
        let points: Vec<GammaPoint> = (1..=64)
            .map(|c| GammaPoint {
                c,
                gamma: mech.eval(c),
            })
            .collect();
        let fit = fit_gamma(&points).unwrap();
        for c in [2usize, 8, 32, 64] {
            let err = (fit.model.eval(c) - mech.eval(c)).abs() / mech.eval(c);
            assert!(err < 0.05, "relative error {err} at c={c}");
        }
    }
}
