//! Architecture profiles: Table V hardware descriptions plus the
//! mechanistic simulator knobs and nominal Table IV model parameters.
//!
//! The three presets correspond to the paper's evaluation platforms:
//!
//! | | Xeon (Broadwell) | Xeon Phi (KNL) | OpenPOWER (Power8) |
//! |---|---|---|---|
//! | Sockets × cores | 2 × 14 | 1 × 68 | 2 × 10 |
//! | Threads/core | 1 | 4 | 8 |
//! | Page size | 4 KiB | 4 KiB | 64 KiB |
//! | Full-subscription ranks used | 28 | 64 | 160 |
//!
//! The mechanistic knobs (`l_lock_ns`, `k_bounce`, `x_socket`,
//! bandwidths) drive `kacc-machine`'s emergent-contention simulation; the
//! analytic Table IV parameters are *extracted from* simulator runs by
//! `model::extract`, exactly as the paper extracts them from hardware.
//! The γ coefficients printed in the paper's Table IV are OCR-corrupted
//! in our source text, so DESIGN.md documents the reconstruction: a
//! super-linear γ with an inter-socket knee at the socket core count.

use crate::gamma::GammaModel;
use crate::params::ModelParams;
use kacc_comm::Topology;
use serde::{Deserialize, Serialize};

/// Complete description of one node architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchProfile {
    /// Human-readable name ("KNL", "Broadwell", "Power8").
    pub name: String,
    /// CPU sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// SMT ways per core.
    pub threads_per_core: usize,
    /// Page size in bytes (the model's `s`).
    pub page_size: usize,
    /// Process count the paper uses on this machine (full subscription).
    pub default_procs: usize,

    // ---- mechanistic simulator knobs ----
    /// Fixed syscall entry/exit cost, ns.
    pub t_syscall_ns: f64,
    /// Permission / capability check cost per call, ns.
    pub t_permcheck_ns: f64,
    /// Uncontended page-table lock acquire+release per page, ns.
    pub l_lock_ns: f64,
    /// Page pin work per page (uncontended, after the lock), ns.
    pub l_pin_ns: f64,
    /// Lock handoff inflation per additional waiter (cache-line bounce).
    pub k_bounce: f64,
    /// Multiplier applied to `k_bounce` when waiters span sockets.
    pub x_socket: f64,
    /// Per-core copy bandwidth, bytes/ns (the model's 1/β).
    pub bw_core: f64,
    /// Aggregate memory bandwidth, bytes/ns; concurrent copies share it.
    pub bw_total: f64,
    /// Inter-socket link (QPI/X-Bus) bandwidth, bytes/ns; cross-socket
    /// copies share this instead of the local memory pool.
    pub bw_qpi: f64,
    /// Bandwidth penalty for inter-socket copies (divide `bw_core`).
    pub inter_socket_bw_penalty: f64,
    /// Latency of a small control message through shared memory, ns.
    pub sm_msg_ns: f64,
    /// Per-byte cost of control-plane payloads, ns/byte.
    pub sm_byte_ns: f64,
    /// Pages pinned per batch inside the simulated CMA copy loop.
    pub pin_batch_pages: usize,
}

impl ArchProfile {
    /// Intel Xeon Phi "Knights Landing" 7250: 68 cores, single socket,
    /// MCDRAM cache mode, 4 KiB pages. The paper runs 64 processes.
    pub fn knl() -> ArchProfile {
        ArchProfile {
            name: "KNL".into(),
            sockets: 1,
            cores_per_socket: 68,
            threads_per_core: 4,
            page_size: 4096,
            default_procs: 64,
            t_syscall_ns: 900.0,
            t_permcheck_ns: 530.0,
            l_lock_ns: 150.0,
            l_pin_ns: 100.0,
            k_bounce: 0.17,
            x_socket: 1.0, // single socket: no inter-socket knee
            bw_core: 3.29,
            bw_total: 26.0,
            bw_qpi: 26.0, // single socket: never traversed
            inter_socket_bw_penalty: 1.0,
            sm_msg_ns: 600.0,
            sm_byte_ns: 0.6,
            pin_batch_pages: 64,
        }
    }

    /// Intel Xeon E5-2680 v4 "Broadwell": 2 × 14 cores, 4 KiB pages.
    /// The paper runs 28 processes.
    pub fn broadwell() -> ArchProfile {
        ArchProfile {
            name: "Broadwell".into(),
            sockets: 2,
            cores_per_socket: 14,
            threads_per_core: 1,
            page_size: 4096,
            default_procs: 28,
            t_syscall_ns: 600.0,
            t_permcheck_ns: 380.0,
            l_lock_ns: 60.0,
            l_pin_ns: 50.0,
            k_bounce: 0.17,
            x_socket: 3.0,
            bw_core: 3.1,
            bw_total: 9.0,
            bw_qpi: 4.5,
            inter_socket_bw_penalty: 1.3,
            sm_msg_ns: 300.0,
            sm_byte_ns: 0.35,
            pin_batch_pages: 64,
        }
    }

    /// IBM Power8 PPC64LE: 2 × 10 cores, SMT-8, 64 KiB pages. The paper
    /// runs 160 processes.
    pub fn power8() -> ArchProfile {
        ArchProfile {
            name: "Power8".into(),
            sockets: 2,
            cores_per_socket: 10,
            threads_per_core: 8,
            page_size: 65536,
            default_procs: 160,
            t_syscall_ns: 450.0,
            t_permcheck_ns: 300.0,
            l_lock_ns: 330.0,
            l_pin_ns: 200.0,
            k_bounce: 0.05,
            x_socket: 4.0,
            bw_core: 3.7,
            bw_total: 37.0,
            bw_qpi: 16.0,
            inter_socket_bw_penalty: 1.4,
            sm_msg_ns: 250.0,
            sm_byte_ns: 0.3,
            pin_batch_pages: 64,
        }
    }

    /// All three paper platforms.
    pub fn all() -> Vec<ArchProfile> {
        vec![
            ArchProfile::knl(),
            ArchProfile::broadwell(),
            ArchProfile::power8(),
        ]
    }

    /// Look up a preset by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ArchProfile> {
        ArchProfile::all()
            .into_iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// The node topology (process-to-core mapping source of truth).
    pub fn topology(&self) -> Topology {
        Topology {
            sockets: self.sockets,
            cores_per_socket: self.cores_per_socket,
            threads_per_core: self.threads_per_core,
            page_size: self.page_size,
        }
    }

    /// Uncontended per-page lock+pin time (the model's `l`).
    pub fn l_ns(&self) -> f64 {
        self.l_lock_ns + self.l_pin_ns
    }

    /// Startup cost (the model's α = syscall + permission check).
    pub fn alpha_ns(&self) -> f64 {
        self.t_syscall_ns + self.t_permcheck_ns
    }

    /// Per-byte copy time at full per-core bandwidth (the model's β).
    pub fn beta_ns_per_byte(&self) -> f64 {
        1.0 / self.bw_core
    }

    /// The closed-form γ implied by the mechanistic lock: with `c`
    /// symmetric concurrent readers served round-robin, each reader's
    /// per-page time inflates by
    /// `γ(c) = c·(1 + w_lock·k_bounce·(c−1)·xs(c))` where
    /// `w_lock = l_lock/(l_lock+l_pin)` weights the bounce term (only the
    /// lock handoff bounces) and `xs(c)` is `x_socket` once the reader
    /// set spans sockets.
    pub fn mechanistic_gamma(&self) -> GammaModel {
        GammaModel::Mechanistic {
            k_bounce: self.k_bounce,
            x_socket: self.x_socket,
            socket_knee: self.cores_per_socket,
            lock_weight: self.l_lock_ns / (self.l_lock_ns + self.l_pin_ns),
        }
    }

    /// Nominal analytic model parameters derived directly from the
    /// mechanistic knobs (extraction via `model::extract` recovers these
    /// from simulated probes instead, like the paper does from hardware).
    pub fn nominal_model(&self) -> ModelParams {
        ModelParams {
            alpha_ns: self.alpha_ns(),
            beta_ns_per_byte: self.beta_ns_per_byte(),
            l_ns: self.l_ns(),
            page_size: self.page_size,
            gamma: self.mechanistic_gamma(),
            sm_msg_ns: self.sm_msg_ns,
            sm_byte_ns: self.sm_byte_ns,
            memcpy_ns_per_byte: self.beta_ns_per_byte(),
            // Copy capacity: local memory pool plus (on multi-socket
            // parts) the inter-socket link the simulator routes
            // cross-socket flows through.
            node_bw_ns_per_byte: 1.0
                / (self.bw_total + if self.sockets > 1 { self.bw_qpi } else { 0.0 }),
        }
    }

    /// Default interconnect for this platform (Table V's last row).
    pub fn default_fabric(&self) -> FabricParams {
        match self.name.as_str() {
            "KNL" => FabricParams::omni_path(),
            _ => FabricParams::ib_edr(),
        }
    }

    /// Table V row for this profile (label, value) pairs, for the repro
    /// harness.
    pub fn table5_row(&self) -> Vec<(String, String)> {
        vec![
            ("Processor Family".into(), self.name.clone()),
            ("No. of Sockets".into(), self.sockets.to_string()),
            ("Cores Per Socket".into(), self.cores_per_socket.to_string()),
            ("Threads per Core".into(), self.threads_per_core.to_string()),
            ("Page Size (B)".into(), self.page_size.to_string()),
            ("Default Procs".into(), self.default_procs.to_string()),
        ]
    }
}

/// Inter-node fabric parameters (latency-bandwidth model with per-NIC
/// link sharing, used by the multi-node experiments of §VII-G).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricParams {
    /// Fabric name for display.
    pub name: String,
    /// Per-message startup latency, ns.
    pub alpha_ns: f64,
    /// Link bandwidth per NIC direction, bytes/ns.
    pub bw_link: f64,
}

impl FabricParams {
    /// InfiniBand EDR (100 Gb/s): the Xeon and OpenPOWER clusters.
    pub fn ib_edr() -> FabricParams {
        FabricParams {
            name: "IB-EDR".into(),
            alpha_ns: 1500.0,
            bw_link: 12.5,
        }
    }

    /// Intel Omni-Path (100 Gb/s): the KNL cluster.
    pub fn omni_path() -> FabricParams {
        FabricParams {
            name: "Omni-Path".into(),
            alpha_ns: 1700.0,
            bw_link: 12.5,
        }
    }

    /// Cost of one uncontended message of `bytes`.
    pub fn t_msg(&self, bytes: usize) -> f64 {
        self.alpha_ns + bytes as f64 / self.bw_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_presets_are_100gbps() {
        for f in [FabricParams::ib_edr(), FabricParams::omni_path()] {
            assert!((f.bw_link - 12.5).abs() < 1e-9);
            assert!(f.t_msg(0) >= 1000.0);
            // 1 MiB at 12.5 B/ns ≈ 84 µs + startup.
            let t = f.t_msg(1 << 20);
            assert!(t > 80_000.0 && t < 100_000.0, "{t}");
        }
    }

    #[test]
    fn default_fabric_matches_table_v() {
        assert_eq!(ArchProfile::knl().default_fabric().name, "Omni-Path");
        assert_eq!(ArchProfile::broadwell().default_fabric().name, "IB-EDR");
        assert_eq!(ArchProfile::power8().default_fabric().name, "IB-EDR");
    }

    #[test]
    fn presets_match_paper_hardware() {
        let knl = ArchProfile::knl();
        assert_eq!(knl.sockets, 1);
        assert_eq!(knl.cores_per_socket, 68);
        assert_eq!(knl.default_procs, 64);

        let bdw = ArchProfile::broadwell();
        assert_eq!(bdw.topology().physical_cores(), 28);
        assert_eq!(bdw.default_procs, 28);

        let p8 = ArchProfile::power8();
        assert_eq!(p8.page_size, 65536);
        assert_eq!(p8.topology().hardware_threads(), 160);
    }

    #[test]
    fn nominal_parameters_land_near_table_iv() {
        // Table IV: α = 1.43/0.98/0.75 µs, β⁻¹ = 3.29/3.1/3.7 GB/s,
        // l = 0.25/0.11/0.53 µs for KNL/Broadwell/Power8.
        let knl = ArchProfile::knl();
        assert!((knl.alpha_ns() - 1430.0).abs() < 1.0);
        assert!((knl.l_ns() - 250.0).abs() < 1.0);
        assert!((1.0 / knl.beta_ns_per_byte() - 3.29).abs() < 0.01);

        let bdw = ArchProfile::broadwell();
        assert!((bdw.alpha_ns() - 980.0).abs() < 1.0);
        assert!((bdw.l_ns() - 110.0).abs() < 1.0);

        let p8 = ArchProfile::power8();
        assert!((p8.alpha_ns() - 750.0).abs() < 1.0);
        assert!((p8.l_ns() - 530.0).abs() < 1.0);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(ArchProfile::by_name("knl").is_some());
        assert!(ArchProfile::by_name("BROADWELL").is_some());
        assert!(ArchProfile::by_name("skylake").is_none());
    }

    #[test]
    fn profiles_implement_serde() {
        // Compile-time check that the derives exist (the repro harness
        // serializes profiles for its records).
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<ArchProfile>();
    }
}
