//! Closed-form latency predictions for every collective algorithm in the
//! paper (§IV personalized, §V non-personalized).
//!
//! All functions return nanoseconds for an intra-node collective over `p`
//! ranks where `eta` is the per-destination (Scatter/Gather/Alltoall) or
//! per-source (Allgather/Bcast) message size in bytes. Address-exchange
//! payloads are [`ADDR_BYTES`] per rank.

use crate::params::{ceil_log2, ModelParams};

/// Wire size of one exchanged buffer address (a serialized RemoteToken).
pub const ADDR_BYTES: usize = 16;

// ---------------------------------------------------------------- Scatter

/// §IV-A1 Parallel Reads: every non-root reads its slice concurrently.
/// `T = T^sm_bcast + α + ηβ + l·γ_{p−1}·⌈η/s⌉ + T^sm_gather`.
pub fn scatter_parallel_read(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    m.t_sm_bcast(p, ADDR_BYTES) + m.t_cma(eta, p - 1) + m.t_sm_gather(p, 0)
}

/// §IV-A2 Sequential Writes: the root writes each slice in turn;
/// contention-free but serialized.
/// `T = T_memcpy + T^sm_gather + (p−1)(α + ηβ + l·⌈η/s⌉) + T^sm_bcast`.
pub fn scatter_sequential_write(m: &ModelParams, p: usize, eta: usize, in_place: bool) -> f64 {
    if p == 1 {
        return 0.0;
    }
    let memcpy = if in_place { 0.0 } else { m.t_memcpy(eta) };
    memcpy + m.t_sm_gather(p, ADDR_BYTES) + (p - 1) as f64 * m.t_cma(eta, 1) + m.t_sm_bcast(p, 0)
}

/// §IV-A3 Throttled Reads with throttle factor `k`: ⌈(p−1)/k⌉ waves of k
/// concurrent readers chained by point-to-point unblock messages.
/// `T = T^sm_bcast + ⌈(p−1)/k⌉(α + ηβ + l·γ_k·⌈η/s⌉)`.
pub fn scatter_throttled_read(m: &ModelParams, p: usize, eta: usize, k: usize) -> f64 {
    assert!(k >= 1, "throttle factor must be positive");
    if p == 1 {
        return 0.0;
    }
    let waves = (p - 1).div_ceil(k) as f64;
    m.t_sm_bcast(p, ADDR_BYTES) + waves * m.t_cma(eta, k.min(p - 1))
}

// ----------------------------------------------------------------- Gather

/// §IV-B1 Parallel Writes (mirror of parallel-read scatter).
pub fn gather_parallel_write(m: &ModelParams, p: usize, eta: usize) -> f64 {
    scatter_parallel_read(m, p, eta)
}

/// §IV-B2 Sequential Reads (mirror of sequential-write scatter).
pub fn gather_sequential_read(m: &ModelParams, p: usize, eta: usize, in_place: bool) -> f64 {
    scatter_sequential_write(m, p, eta, in_place)
}

/// §IV-B3 Throttled Writes (mirror of throttled-read scatter).
pub fn gather_throttled_write(m: &ModelParams, p: usize, eta: usize, k: usize) -> f64 {
    scatter_throttled_read(m, p, eta, k)
}

// --------------------------------------------------------------- Alltoall

/// §IV-C1 Pairwise exchange as a native CMA collective: p−1 steps, each
/// reading from a distinct peer — contention-free.
/// `T = T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉)`.
pub fn alltoall_pairwise(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    m.t_sm_allgather(p, ADDR_BYTES) + (p - 1) as f64 * m.t_cma_shared(eta, 1, p)
}

/// Pairwise exchange over point-to-point CMA: adds the RTS/CTS control
/// round-trip every step (what a pt2pt rendezvous protocol pays).
pub fn alltoall_pairwise_pt2pt(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    (p - 1) as f64 * (2.0 * m.t_sm_msg(ADDR_BYTES) + m.t_cma_shared(eta, 1, p))
}

/// Pairwise exchange over two-copy shared memory: each step moves η bytes
/// with a copy-in and a copy-out (all p ranks copying concurrently).
pub fn alltoall_pairwise_shmem(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    (p - 1) as f64 * (m.t_sm_msg(0) + 2.0 * m.t_memcpy_shared(eta, p))
}

// -------------------------------------------------------------- Allgather

/// §V-A1/2 Ring (neighbor or source variant): p−1 contention-free steps.
/// `T = T_memcpy + T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉) + T_barrier`.
pub fn allgather_ring(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    m.t_memcpy(eta)
        + m.t_sm_allgather(p, ADDR_BYTES)
        + (p - 1) as f64 * m.t_cma_shared(eta, 1, p)
        + m.t_sm_barrier(p)
}

/// §V-A3 Recursive Doubling: lg p startups, same bandwidth/lock volume.
/// `T = T_memcpy + T^sm_allgather + lg p·α + (p−1)(ηβ + l·⌈η/s⌉) + T_barrier`.
pub fn allgather_recursive_doubling(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    let pages = eta.div_ceil(m.page_size) as f64;
    m.t_memcpy(eta)
        + m.t_sm_allgather(p, ADDR_BYTES)
        + ceil_log2(p) as f64 * m.alpha_ns
        + (p - 1) as f64 * (eta as f64 * m.beta_shared(p) + m.l_ns * pages)
        + m.t_sm_barrier(p)
}

/// §V-A4 Bruck: logarithmic steps but an extra copy per datum plus the
/// final rotation.
/// `T = T^sm_allgather + ⌈lg p⌉·α + (p−1)(2ηβ + l·⌈η/s⌉) + T_barrier`.
pub fn allgather_bruck(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    let pages = eta.div_ceil(m.page_size) as f64;
    m.t_sm_allgather(p, ADDR_BYTES)
        + ceil_log2(p) as f64 * m.alpha_ns
        + (p - 1) as f64 * (2.0 * eta as f64 * m.beta_shared(p) + m.l_ns * pages)
        + m.t_sm_barrier(p)
}

// ------------------------------------------------------------------ Bcast

/// §V-B1 Direct Reads: all non-roots read the root's buffer at once.
pub fn bcast_direct_read(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    m.t_sm_bcast(p, ADDR_BYTES) + m.t_cma(eta, p - 1) + m.t_sm_gather(p, 0)
}

/// §V-B1 Direct Writes: the root writes every receive buffer in turn.
pub fn bcast_direct_write(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    m.t_sm_gather(p, ADDR_BYTES) + (p - 1) as f64 * m.t_cma(eta, 1) + m.t_sm_bcast(p, 0)
}

/// §V-B2 k-nomial tree with radix `k` (k ≥ 2): each parent feeds up to
/// k−1 concurrent readers per round, ⌈log_k p⌉ rounds.
/// `T = T^sm_bcast + ⌈log_k p⌉(α + ηβ + l·γ_{k−1}·⌈η/s⌉)`.
pub fn bcast_knomial(m: &ModelParams, p: usize, eta: usize, k: usize) -> f64 {
    assert!(k >= 2, "k-nomial radix must be at least 2");
    if p == 1 {
        return 0.0;
    }
    let rounds = ceil_log_k(p, k) as f64;
    let lock_c = (k - 1).min(p - 1);
    let copy_c = (p * (k - 1) / k).clamp(lock_c, p.saturating_sub(1).max(1));
    m.t_sm_bcast(p, ADDR_BYTES) + rounds * m.t_cma_shared(eta, lock_c, copy_c)
}

/// §V-B3 Scatter-Allgather (Van de Geijn): sequential-write scatter of
/// η/p chunks followed by a ring allgather of the chunks.
/// `T = T^sm_allgather + T_scatter(η/p) + T_allgather(η/p)`.
pub fn bcast_scatter_allgather(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    let chunk = eta.div_ceil(p);
    m.t_sm_allgather(p, ADDR_BYTES)
        + scatter_sequential_write(m, p, chunk, true)
        + allgather_ring(m, p, chunk)
}

// ------------------------------------------------------------------ Reduce
// (extension: the paper's §IX future work, modeled with the same terms)

/// Sequential root-pull Reduce: p−1 contention-free reads plus a local
/// combine pass per contribution at the root.
pub fn reduce_sequential(m: &ModelParams, p: usize, eta: usize) -> f64 {
    if p == 1 {
        return 0.0;
    }
    (p - 1) as f64 * (m.t_cma(eta, 1) + 2.0 * m.t_memcpy(eta)) + m.t_memcpy(eta)
}

/// Radix-`k` combining-tree Reduce: ⌈log_k p⌉ levels, each level pulling
/// up to k−1 children sequentially per parent while parents across the
/// node work in parallel (copies share bandwidth).
pub fn reduce_knomial_tree(m: &ModelParams, p: usize, eta: usize, k: usize) -> f64 {
    assert!(k >= 2);
    if p == 1 {
        return 0.0;
    }
    let levels = ceil_log_k(p, k) as f64;
    let per_child =
        m.t_cma_shared(eta, 1, p / k.max(1)) + 2.0 * m.t_memcpy_shared(eta, p / k.max(1));
    levels * (k - 1) as f64 * per_child + m.t_memcpy(eta)
}

/// ⌈log_k p⌉ for k ≥ 2.
pub fn ceil_log_k(p: usize, k: usize) -> u32 {
    assert!(p > 0 && k >= 2);
    let mut rounds = 0u32;
    let mut reach = 1usize;
    while reach < p {
        reach = reach.saturating_mul(k);
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchProfile;

    fn knl() -> ModelParams {
        ArchProfile::knl().nominal_model()
    }

    #[test]
    fn ceil_log_k_table() {
        assert_eq!(ceil_log_k(1, 2), 0);
        assert_eq!(ceil_log_k(64, 2), 6);
        assert_eq!(ceil_log_k(64, 4), 3);
        assert_eq!(ceil_log_k(65, 4), 4);
        assert_eq!(ceil_log_k(160, 11), 3);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = knl();
        assert_eq!(scatter_parallel_read(&m, 1, 1 << 20), 0.0);
        assert_eq!(bcast_scatter_allgather(&m, 1, 1 << 20), 0.0);
        assert_eq!(alltoall_pairwise(&m, 1, 1 << 20), 0.0);
    }

    #[test]
    fn throttled_interpolates_between_parallel_and_sequential() {
        // k = p−1 is parallel-read-like; k = 1 is sequential-like (modulo
        // the sm phases). For large messages on KNL the paper's ordering
        // is: throttled(4..8) < both extremes.
        let m = knl();
        let p = 64;
        let eta = 1 << 20; // 1 MiB
        let par = scatter_parallel_read(&m, p, eta);
        let seq = scatter_sequential_write(&m, p, eta, true);
        let t4 = scatter_throttled_read(&m, p, eta, 4);
        let t8 = scatter_throttled_read(&m, p, eta, 8);
        assert!(t4 < par, "throttle 4 ({t4}) should beat parallel ({par})");
        assert!(t4 < seq, "throttle 4 ({t4}) should beat sequential ({seq})");
        assert!(t8 < par && t8 < seq);
    }

    #[test]
    fn parallel_read_wins_small_messages_on_knl() {
        // Fig 7(a): for small messages parallel read outperforms
        // sequential writes.
        let m = knl();
        let p = 64;
        let eta = 1 << 10; // 1 KiB
        assert!(scatter_parallel_read(&m, p, eta) < scatter_sequential_write(&m, p, eta, true));
    }

    #[test]
    fn sequential_write_wins_large_messages_under_heavy_contention() {
        // Fig 7(a): with 63 concurrent readers, parallel read loses badly
        // at 4 MiB.
        let m = knl();
        let p = 64;
        let eta = 4 << 20;
        assert!(scatter_sequential_write(&m, p, eta, true) < scatter_parallel_read(&m, p, eta));
    }

    #[test]
    fn native_collective_beats_pt2pt_beats_shmem_for_large_alltoall() {
        // Fig 9 ordering for medium/large messages.
        let m = knl();
        let p = 64;
        for eta in [16 << 10, 256 << 10] {
            let coll = alltoall_pairwise(&m, p, eta);
            let pt = alltoall_pairwise_pt2pt(&m, p, eta);
            let shm = alltoall_pairwise_shmem(&m, p, eta);
            assert!(coll < pt, "native ({coll}) vs pt2pt ({pt}) at {eta}");
            assert!(pt < shm, "pt2pt ({pt}) vs shmem ({shm}) at {eta}");
        }
    }

    #[test]
    fn bruck_allgather_wins_small_loses_large_paper_model() {
        // Fig 10(a) under the paper's bandwidth-unaware model
        // (node_bw = 0): Bruck best for small messages (log p startups),
        // worst for large (extra copies). With our aggregate-bandwidth
        // extension the small-message advantage shrinks because Bruck's
        // extra copies also share the memory system (recorded in
        // EXPERIMENTS.md).
        let mut m = knl();
        m.node_bw_ns_per_byte = 0.0;
        let p = 64;
        let small = 1 << 10;
        let large = 1 << 20;
        assert!(allgather_bruck(&m, p, small) < allgather_ring(&m, p, small));
        assert!(allgather_ring(&m, p, large) < allgather_bruck(&m, p, large));
        // Bandwidth-aware: ring keeps winning large.
        let m = knl();
        assert!(allgather_ring(&m, p, large) < allgather_bruck(&m, p, large));
    }

    #[test]
    fn knomial_beats_direct_reads_for_bcast() {
        // Fig 11: k-nomial outperforms direct read (full contention) and
        // direct write (full serialization) across the board on KNL.
        let m = knl();
        let p = 64;
        for eta in [64 << 10, 1 << 20] {
            let kn = bcast_knomial(&m, p, eta, 8);
            assert!(kn < bcast_direct_read(&m, p, eta));
            assert!(kn < bcast_direct_write(&m, p, eta));
        }
    }

    #[test]
    fn scatter_allgather_wins_very_large_bcast() {
        // Fig 11: scatter-allgather is best for large messages thanks to
        // contention avoidance.
        let m = knl();
        let p = 64;
        let eta = 4 << 20;
        let sag = bcast_scatter_allgather(&m, p, eta);
        assert!(sag < bcast_direct_read(&m, p, eta));
        assert!(sag < bcast_direct_write(&m, p, eta));
        // And it loses for small messages (overhead).
        let small = 2 << 10;
        assert!(bcast_knomial(&m, p, small, 8) < bcast_scatter_allgather(&m, p, small));
    }
}
