//! Chrome trace-event JSON exporter.
//!
//! Produces the "JSON array format" understood by `chrome://tracing` and
//! Perfetto: one track per simulated rank (pid 0) plus one per page-lock
//! server (pid 1, carrying the queue-depth counter). Spans become `"X"`
//! (complete) events with microsecond `ts`/`dur`, instants become `"i"`,
//! counters become `"C"`.
//!
//! Events are grouped per track and sorted by timestamp before emission, so
//! every track's `ts` sequence is monotone non-decreasing — the property the
//! `trace-validate` CI step checks.

use crate::{Event, EventKind, Track};

/// (pid, tid) pair a [`Track`] renders under in the exported trace.
pub fn track_ids(track: Track) -> (u64, u64) {
    match track {
        Track::Rank(r) => (0, r as u64),
        Track::LockServer(s) => (1, s as u64),
    }
}

fn track_name(track: Track) -> String {
    match track {
        Track::Rank(r) => format!("rank {r}"),
        Track::LockServer(s) => format!("page-lock server {s}"),
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microseconds (Chrome-trace `ts`/`dur` unit).
fn us(ns: f64) -> f64 {
    ns / 1000.0
}

/// Render a slice of events as Chrome trace-event JSON (array format).
///
/// The output is self-contained: it starts with `process_name` /
/// `thread_name` metadata so Perfetto labels each rank and lock-server
/// track, then lists all events grouped per track in timestamp order.
/// An empty slice renders as `"[]"`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    if events.is_empty() {
        return "[]".to_string();
    }

    // Stable order: group by track, then by timestamp (stable sort keeps
    // emission order for identical timestamps).
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by(|a, b| {
        track_ids(a.track)
            .cmp(&track_ids(b.track))
            .then(a.ts().cmp(&b.ts()))
    });

    let mut tracks: Vec<Track> = sorted.iter().map(|e| e.track).collect();
    tracks.dedup();

    let mut parts: Vec<String> = Vec::with_capacity(sorted.len() + tracks.len() + 2);

    // Process metadata: pid 0 = ranks, pid 1 = lock servers.
    let mut pids: Vec<u64> = tracks.iter().map(|&t| track_ids(t).0).collect();
    pids.dedup();
    for pid in pids {
        let pname = if pid == 0 {
            "ranks"
        } else {
            "page-lock servers"
        };
        parts.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{pname}"}}}}"#
        ));
    }
    for &t in &tracks {
        let (pid, tid) = track_ids(t);
        parts.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            esc(&track_name(t))
        ));
    }

    for ev in sorted {
        let (pid, tid) = track_ids(ev.track);
        let name = esc(ev.name);
        let cat = match ev.class {
            Some(c) => format!("class{c}"),
            None => "sim".to_string(),
        };
        match ev.kind {
            EventKind::Span { ts, dur } => {
                let args = if ev.bytes > 0 {
                    format!(r#","args":{{"bytes":{}}}"#, ev.bytes)
                } else {
                    String::new()
                };
                parts.push(format!(
                    r#"{{"name":"{name}","cat":"{cat}","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{tid}{args}}}"#,
                    us(ts as f64),
                    us(dur)
                ));
            }
            EventKind::Instant { ts } => {
                parts.push(format!(
                    r#"{{"name":"{name}","cat":"{cat}","ph":"i","ts":{},"pid":{pid},"tid":{tid},"s":"t"}}"#,
                    us(ts as f64)
                ));
            }
            EventKind::Counter { ts, value } => {
                parts.push(format!(
                    r#"{{"name":"{name}","cat":"{cat}","ph":"C","ts":{},"pid":{pid},"tid":{tid},"args":{{"{name}":{value}}}}}"#,
                    us(ts as f64)
                ));
            }
        }
    }

    let mut out = String::from("[\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n]");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_empty_array() {
        assert_eq!(chrome_trace_json(&[]), "[]");
    }

    #[test]
    fn span_renders_complete_event_in_microseconds() {
        let ev = Event {
            track: Track::Rank(3),
            name: "copy",
            kind: EventKind::Span {
                ts: 2000,
                dur: 500.0,
            },
            bytes: 4096,
            class: Some(17),
        };
        let j = chrome_trace_json(&[ev]);
        assert!(j.contains(r#""name":"copy""#), "{j}");
        assert!(j.contains(r#""ph":"X""#), "{j}");
        assert!(j.contains(r#""ts":2"#), "{j}");
        assert!(j.contains(r#""dur":0.5"#), "{j}");
        assert!(j.contains(r#""tid":3"#), "{j}");
        assert!(j.contains(r#""bytes":4096"#), "{j}");
        assert!(j.contains(r#""cat":"class17""#), "{j}");
        assert!(j.contains(r#""name":"rank 3""#), "{j}");
    }

    #[test]
    fn lockserver_goes_to_pid_1_with_counter() {
        let ev = Event {
            track: Track::LockServer(2),
            name: "queue_depth",
            kind: EventKind::Counter {
                ts: 1000,
                value: 4.0,
            },
            bytes: 0,
            class: None,
        };
        let j = chrome_trace_json(&[ev]);
        assert!(j.contains(r#""ph":"C""#), "{j}");
        assert!(j.contains(r#""pid":1"#), "{j}");
        assert!(j.contains(r#""queue_depth":4"#), "{j}");
        assert!(j.contains(r#""name":"page-lock server 2""#), "{j}");
    }

    #[test]
    fn per_track_timestamps_are_monotone_even_if_emitted_out_of_order() {
        // A dispatch instant at t=300 can be *emitted* before a span that
        // started at t=100; the exporter must still order each track by ts.
        let evs = vec![
            Event {
                track: Track::Rank(0),
                name: "dispatch",
                kind: EventKind::Instant { ts: 300 },
                bytes: 0,
                class: None,
            },
            Event {
                track: Track::Rank(0),
                name: "lock",
                kind: EventKind::Span {
                    ts: 100,
                    dur: 200.0,
                },
                bytes: 0,
                class: None,
            },
        ];
        let j = chrome_trace_json(&evs);
        let lock_pos = j.find(r#""name":"lock""#).unwrap();
        let disp_pos = j.find(r#""name":"dispatch""#).unwrap();
        assert!(
            lock_pos < disp_pos,
            "span at ts=100 must precede instant at ts=300:\n{j}"
        );
        crate::validate::validate_chrome_json(&j).expect("exported trace must validate");
    }
}
