//! ftrace-style phase breakdown tables aggregated from trace events.
//!
//! This reproduces the paper's Fig 2–4 methodology: sum the time spent in
//! each phase of the kernel-assisted copy path (syscall / permission check /
//! page lock / pin / copy) and present calls, totals, averages, and the
//! share of overall phase time — the table that makes the super-linear
//! growth of lock time under contention visible.

use crate::{Event, EventKind};

/// Canonical copy-path phase order (paper Fig 2); phases outside this list
/// render after these, in first-seen order.
const CANONICAL: [&str; 5] = ["syscall", "check", "lock", "pin", "copy"];

/// Aggregate statistics for one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub name: &'static str,
    /// Number of spans observed.
    pub calls: u64,
    /// Summed duration in nanoseconds. Accumulated in event order, so for a
    /// deterministic simulation run this is bitwise equal to the machine's
    /// own `StepStats` accumulation of the same values.
    pub total_ns: f64,
    /// Summed bytes attributed to the phase's spans.
    pub bytes: u64,
}

impl PhaseStat {
    /// Mean span duration in nanoseconds (0 for no calls).
    pub fn avg_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns / self.calls as f64
        }
    }
}

/// Phase-breakdown table built from span events.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    phases: Vec<PhaseStat>,
}

impl Breakdown {
    /// Aggregate all span events (instants and counters are ignored).
    pub fn from_events(events: &[Event]) -> Self {
        let mut b = Breakdown::default();
        for ev in events {
            if let EventKind::Span { dur, .. } = ev.kind {
                b.add(ev.name, dur, ev.bytes);
            }
        }
        b.sort();
        b
    }

    fn add(&mut self, name: &'static str, dur: f64, bytes: u64) {
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.calls += 1;
                p.total_ns += dur;
                p.bytes += bytes;
            }
            None => self.phases.push(PhaseStat {
                name,
                calls: 1,
                total_ns: dur,
                bytes,
            }),
        }
    }

    fn sort(&mut self) {
        // Canonical copy-path phases first, then everything else in
        // first-seen order (stable sort preserves it).
        self.phases.sort_by_key(|p| {
            CANONICAL
                .iter()
                .position(|&c| c == p.name)
                .unwrap_or(CANONICAL.len())
        });
    }

    /// All phases, canonical copy-path order first.
    pub fn phases(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// Look up one phase by name.
    pub fn get(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Summed duration of all phases, in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// Fraction of total phase time spent in `name` (0 if absent or the
    /// table is empty).
    pub fn share(&self, name: &str) -> f64 {
        let total = self.total_ns();
        if total <= 0.0 {
            return 0.0;
        }
        self.get(name).map_or(0.0, |p| p.total_ns / total)
    }

    /// Render the ftrace-style table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>16} {:>12} {:>12} {:>7}\n",
            "phase", "calls", "total(ns)", "avg(ns)", "bytes", "share"
        ));
        let total = self.total_ns();
        for p in &self.phases {
            let share = if total > 0.0 {
                100.0 * p.total_ns / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<10} {:>8} {:>16.1} {:>12.1} {:>12} {:>6.1}%\n",
                p.name,
                p.calls,
                p.total_ns,
                p.avg_ns(),
                p.bytes,
                share
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>16.1}\n",
            "total",
            self.phases.iter().map(|p| p.calls).sum::<u64>(),
            total
        ));
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{Event, EventKind, Track};

    fn span(name: &'static str, dur: f64, bytes: u64) -> Event {
        Event {
            track: Track::Rank(0),
            name,
            kind: EventKind::Span { ts: 0, dur },
            bytes,
            class: None,
        }
    }

    #[test]
    fn aggregates_and_orders_canonically() {
        let evs = vec![
            span("copy", 100.0, 4096),
            span("lock", 30.0, 0),
            span("syscall", 5.0, 0),
            span("lock", 40.0, 0),
            Event {
                track: Track::Rank(0),
                name: "ignored",
                kind: EventKind::Instant { ts: 7 },
                bytes: 0,
                class: None,
            },
        ];
        let b = Breakdown::from_events(&evs);
        let names: Vec<&str> = b.phases().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["syscall", "lock", "copy"]);
        let lock = b.get("lock").unwrap();
        assert_eq!(lock.calls, 2);
        assert_eq!(lock.total_ns, 70.0);
        assert_eq!(lock.avg_ns(), 35.0);
        assert_eq!(b.total_ns(), 175.0);
        assert!((b.share("lock") - 0.4).abs() < 1e-12);
        let table = b.to_table();
        assert!(table.contains("lock"), "{table}");
        assert!(table.contains("total"), "{table}");
    }

    #[test]
    fn empty_breakdown_is_harmless() {
        let b = Breakdown::from_events(&[]);
        assert!(b.phases().is_empty());
        assert_eq!(b.total_ns(), 0.0);
        assert_eq!(b.share("lock"), 0.0);
        assert!(b.to_table().contains("phase"));
    }
}
