//! Chrome-trace JSON schema validation (the CI `trace-validate` gate).
//!
//! The workspace builds offline with no `serde_json`, so this module carries
//! a minimal hand-rolled JSON parser — just enough for the trace-event array
//! format — and checks the properties a Perfetto-loadable trace must have:
//! a top-level array of objects, each with a known `ph` phase, numeric
//! non-negative `ts`, integer `pid`/`tid`, `dur >= 0` on complete events,
//! and per-(pid,tid)-track monotone non-decreasing timestamps.

use std::collections::HashMap;

/// Minimal JSON value for validation purposes.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(self.err(&format!(
                "expected '{}', found '{}'",
                c as char, got as char
            ))),
            None => Err(self.err(&format!("expected '{}', found end of input", c as char))),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number '{s}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| self.err("bad utf8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("bad utf8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.b.len() {
            return Err(self.err("trailing data after JSON value"));
        }
        Ok(v)
    }
}

/// What a successful validation found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events (including metadata).
    pub events: usize,
    /// Distinct (pid, tid) tracks carrying non-metadata events.
    pub tracks: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Counter (`"C"`) samples.
    pub counters: usize,
}

fn int_field(obj: &Value, key: &str, idx: usize) -> Result<i64, String> {
    let n = obj
        .get(key)
        .ok_or_else(|| format!("event {idx}: missing \"{key}\""))?
        .as_num()
        .ok_or_else(|| format!("event {idx}: \"{key}\" is not a number"))?;
    if n.fract() != 0.0 || n < 0.0 {
        return Err(format!(
            "event {idx}: \"{key}\" must be a non-negative integer, got {n}"
        ));
    }
    Ok(n as i64)
}

/// Validate a Chrome trace-event JSON document.
///
/// Checks: top-level array of objects; every event has a `ph` in
/// `{"M","X","i","C"}`; non-metadata events have numeric `ts >= 0` and
/// integer `pid`/`tid`; `"X"` events have `dur >= 0`; and per-(pid,tid)
/// timestamps are monotone non-decreasing.
pub fn validate_chrome_json(json: &str) -> Result<TraceSummary, String> {
    let root = Parser::new(json).parse()?;
    let events = match root {
        Value::Arr(items) => items,
        _ => return Err("top level must be a JSON array of trace events".into()),
    };

    let mut last_ts: HashMap<(i64, i64), f64> = HashMap::new();
    let mut summary = TraceSummary {
        events: events.len(),
        tracks: 0,
        spans: 0,
        counters: 0,
    };

    for (idx, ev) in events.iter().enumerate() {
        if !matches!(ev, Value::Obj(_)) {
            return Err(format!("event {idx}: not a JSON object"));
        }
        let ph = ev
            .get("ph")
            .ok_or_else(|| format!("event {idx}: missing \"ph\""))?
            .as_str()
            .ok_or_else(|| format!("event {idx}: \"ph\" is not a string"))?;
        match ph {
            "M" => continue, // metadata carries no timestamp
            "X" | "i" | "C" => {}
            other => return Err(format!("event {idx}: unknown phase \"{other}\"")),
        }
        let pid = int_field(ev, "pid", idx)?;
        let tid = int_field(ev, "tid", idx)?;
        let ts = ev
            .get("ts")
            .ok_or_else(|| format!("event {idx}: missing \"ts\""))?
            .as_num()
            .ok_or_else(|| format!("event {idx}: \"ts\" is not a number"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!(
                "event {idx}: \"ts\" must be finite and >= 0, got {ts}"
            ));
        }
        if ph == "X" {
            summary.spans += 1;
            let dur = ev
                .get("dur")
                .ok_or_else(|| format!("event {idx}: \"X\" event missing \"dur\""))?
                .as_num()
                .ok_or_else(|| format!("event {idx}: \"dur\" is not a number"))?;
            if !dur.is_finite() || dur < 0.0 {
                return Err(format!(
                    "event {idx}: \"dur\" must be finite and >= 0, got {dur}"
                ));
            }
        }
        if ph == "C" {
            summary.counters += 1;
        }
        let key = (pid, tid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {idx}: non-monotone ts on track (pid={pid}, tid={tid}): {ts} < {prev}"
                ));
            }
        }
        last_ts.insert(key, ts);
    }
    summary.tracks = last_ts.len();
    Ok(summary)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let j = r#"[
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
            {"name":"lock","ph":"X","ts":0.5,"dur":1.25,"pid":0,"tid":0},
            {"name":"go","ph":"i","ts":2,"pid":0,"tid":0,"s":"t"},
            {"name":"depth","ph":"C","ts":3,"pid":1,"tid":0,"args":{"depth":2}}
        ]"#;
        let s = validate_chrome_json(j).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.tracks, 2);
        assert_eq!(s.spans, 1);
        assert_eq!(s.counters, 1);
    }

    #[test]
    fn accepts_empty_array() {
        let s = validate_chrome_json("[]").unwrap();
        assert_eq!(s.events, 0);
        assert_eq!(s.tracks, 0);
    }

    #[test]
    fn rejects_unknown_phase() {
        let j = r#"[{"name":"x","ph":"Z","ts":1,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_json(j)
            .unwrap_err()
            .contains("unknown phase"));
    }

    #[test]
    fn rejects_missing_ts_and_negative_dur() {
        let no_ts = r#"[{"name":"x","ph":"i","pid":0,"tid":0}]"#;
        assert!(validate_chrome_json(no_ts)
            .unwrap_err()
            .contains("missing \"ts\""));
        let neg = r#"[{"name":"x","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]"#;
        assert!(validate_chrome_json(neg).unwrap_err().contains("dur"));
    }

    #[test]
    fn rejects_non_monotone_track() {
        let j = r#"[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
            {"name":"b","ph":"i","ts":3,"pid":0,"tid":0,"s":"t"}
        ]"#;
        assert!(validate_chrome_json(j)
            .unwrap_err()
            .contains("non-monotone"));
    }

    #[test]
    fn different_tracks_are_independent() {
        let j = r#"[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
            {"name":"b","ph":"i","ts":3,"pid":0,"tid":1,"s":"t"}
        ]"#;
        validate_chrome_json(j).unwrap();
    }

    #[test]
    fn rejects_fractional_pid_and_garbage() {
        let j = r#"[{"name":"a","ph":"i","ts":1,"pid":0.5,"tid":0}]"#;
        assert!(validate_chrome_json(j).unwrap_err().contains("pid"));
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{\"a\":1}")
            .unwrap_err()
            .contains("array"));
    }
}
