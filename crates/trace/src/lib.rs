//! Structured tracing for the kacc simulation stack.
//!
//! The paper's core diagnostic instrument is an ftrace breakdown of the
//! kernel-assisted copy path (syscall / permission check / page-lock / pin /
//! copy — Figs 2–4). This crate is the reproduction of that methodology as a
//! first-class subsystem: every layer of the simulator emits *structured
//! events* on **virtual time**, and sinks turn the event stream into
//! Chrome-trace JSON (for `chrome://tracing` / Perfetto) or ftrace-style
//! breakdown tables.
//!
//! # Event model
//!
//! An [`Event`] is a named record on a [`Track`] (one per simulated rank,
//! plus one per page-lock server). Three kinds exist:
//!
//! - **Span** — a phase with a start timestamp and an `f64` duration
//!   (e.g. `lock`, `pin`, `copy`). Durations are `f64` so that span sums are
//!   *bitwise equal* to the machine's own `StepStats` accumulation: the
//!   emitter hands the tracer the very same values, in the same order.
//! - **Instant** — a point event (e.g. a scheduler dispatch).
//! - **Counter** — a sampled value over time (e.g. lock-server queue depth).
//!
//! Timestamps are always supplied by the caller — the tracer never reads a
//! clock — so tracing can never perturb simulated time.
//!
//! # Zero cost when disabled
//!
//! [`Tracer`] is a newtype over `Option<Arc<..>>`. A disabled tracer
//! ([`Tracer::off`]) costs a single branch per emission site and allocates
//! nothing; the hot path never formats, boxes, or locks. This is the
//! overhead guarantee the `trace_overhead` criterion bench enforces (<2% on
//! the executor hot path).
//!
//! # Sinks
//!
//! Anything implementing [`Sink`] can consume events. [`SharedBuffer`] is
//! the built-in in-memory sink; its captured `Vec<Event>` feeds
//! [`chrome_trace_json`] and [`Breakdown::from_events`].

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

pub mod breakdown;
pub mod chrome;
pub mod validate;

pub use breakdown::Breakdown;
pub use chrome::chrome_trace_json;

/// The timeline an event belongs to. Maps to a (pid, tid) pair in the
/// Chrome-trace export: ranks render under pid 0, lock servers under pid 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A simulated rank (cooperative sim thread). One track per rank.
    Rank(usize),
    /// The per-target page-lock server; the index is the target rank whose
    /// pages are being locked. Carries the queue-depth counter.
    LockServer(usize),
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A phase with a start time and duration. `dur` is `f64` nanoseconds so
    /// span sums reproduce the machine's `StepStats` accumulation bitwise.
    Span {
        /// Virtual start time in nanoseconds.
        ts: u64,
        /// Duration in (possibly fractional) nanoseconds.
        dur: f64,
    },
    /// A point event at one virtual time.
    Instant {
        /// Virtual time in nanoseconds.
        ts: u64,
    },
    /// A sampled counter value (e.g. queue depth) at one virtual time.
    Counter {
        /// Virtual time in nanoseconds.
        ts: u64,
        /// The sampled value.
        value: f64,
    },
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timeline this event belongs to.
    pub track: Track,
    /// Static name: the phase ("lock", "pin", "copy", …) or step kind.
    pub name: &'static str,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Bytes moved by this event, if meaningful (0 otherwise).
    pub bytes: u64,
    /// Tag-class / collective attribution (`kacc_comm::tagclass` value), if
    /// the event belongs to an internal collective protocol message.
    pub class: Option<u32>,
}

impl Event {
    /// The event's (start) timestamp in virtual nanoseconds.
    pub fn ts(&self) -> u64 {
        match self.kind {
            EventKind::Span { ts, .. } => ts,
            EventKind::Instant { ts } => ts,
            EventKind::Counter { ts, .. } => ts,
        }
    }
}

/// Consumer of trace events. Implementations must be `Send` because sinks
/// are shared across simulated rank threads (serialized by the tracer).
pub trait Sink: Send {
    /// Record one event. Called in emission order under the tracer's lock.
    fn record(&mut self, ev: &Event);
}

/// In-memory sink capturing events into a shared `Vec`. Cheap to clone;
/// clones view the same buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<Event>>>);

impl SharedBuffer {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain and return all captured events, leaving the buffer empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Sink for SharedBuffer {
    fn record(&mut self, ev: &Event) {
        self.lock().push(ev.clone());
    }
}

struct Inner {
    sink: Mutex<Box<dyn Sink>>,
}

/// Handle used by instrumented code to emit events.
///
/// Clones share the same sink. The disabled state ([`Tracer::off`], also the
/// `Default`) is a `None` — emission is one branch, no allocation, no lock.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Inner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "Tracer(on)"
        } else {
            "Tracer(off)"
        })
    }
}

impl Tracer {
    /// A disabled tracer: every emission is a single `is_some()` branch.
    pub fn off() -> Self {
        Tracer(None)
    }

    /// A tracer feeding the given sink.
    pub fn to_sink(sink: Box<dyn Sink>) -> Self {
        Tracer(Some(Arc::new(Inner {
            sink: Mutex::new(sink),
        })))
    }

    /// Convenience: a tracer recording into a fresh in-memory buffer.
    /// Returns the tracer and a handle to read the captured events back.
    pub fn buffered() -> (Self, SharedBuffer) {
        let buf = SharedBuffer::new();
        (Self::to_sink(Box::new(buf.clone())), buf)
    }

    /// True when events will actually be recorded. Use to skip *computing*
    /// expensive attributes; plain emission calls are already near-free when
    /// disabled.
    #[inline]
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// Emit a fully-formed event.
    #[inline]
    pub fn emit(&self, ev: Event) {
        if let Some(inner) = &self.0 {
            inner
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(&ev);
        }
    }

    /// Emit a phase span: `name` ran on `track` from `ts` for `dur` ns,
    /// moving `bytes` bytes, attributed to tag class `class` (if any).
    #[inline]
    pub fn span(
        &self,
        track: Track,
        name: &'static str,
        ts: u64,
        dur: f64,
        bytes: u64,
        class: Option<u32>,
    ) {
        if self.0.is_some() {
            self.emit(Event {
                track,
                name,
                kind: EventKind::Span { ts, dur },
                bytes,
                class,
            });
        }
    }

    /// Emit a point event.
    #[inline]
    pub fn instant(&self, track: Track, name: &'static str, ts: u64) {
        if self.0.is_some() {
            self.emit(Event {
                track,
                name,
                kind: EventKind::Instant { ts },
                bytes: 0,
                class: None,
            });
        }
    }

    /// Emit a counter sample (e.g. lock-server queue depth).
    #[inline]
    pub fn counter(&self, track: Track, name: &'static str, ts: u64, value: f64) {
        if self.0.is_some() {
            self.emit(Event {
                track,
                name,
                kind: EventKind::Counter { ts, value },
                bytes: 0,
                class: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing_and_reports_off() {
        let t = Tracer::off();
        assert!(!t.on());
        // These must be no-ops, not panics.
        t.span(Track::Rank(0), "lock", 10, 5.0, 0, None);
        t.instant(Track::Rank(0), "x", 1);
        t.counter(Track::LockServer(0), "depth", 2, 3.0);
    }

    #[test]
    fn buffered_tracer_captures_in_order() {
        let (t, buf) = Tracer::buffered();
        assert!(t.on());
        t.span(Track::Rank(1), "copy", 100, 50.5, 4096, Some(17));
        t.instant(Track::Rank(1), "dispatch", 200);
        t.counter(Track::LockServer(2), "queue_depth", 150, 4.0);
        let evs = buf.take();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name, "copy");
        assert_eq!(evs[0].bytes, 4096);
        assert_eq!(evs[0].class, Some(17));
        assert_eq!(evs[0].ts(), 100);
        assert_eq!(evs[1].kind, EventKind::Instant { ts: 200 });
        assert_eq!(evs[2].track, Track::LockServer(2));
        assert!(buf.is_empty());
    }

    #[test]
    fn clones_share_one_sink() {
        let (t, buf) = Tracer::buffered();
        let t2 = t.clone();
        t.instant(Track::Rank(0), "a", 1);
        t2.instant(Track::Rank(1), "b", 2);
        assert_eq!(buf.len(), 2);
    }
}
