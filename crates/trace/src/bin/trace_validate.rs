//! CLI wrapper around [`kacc_trace::validate`]: checks that a Chrome-trace
//! JSON file is well-formed (schema + monotone per-track timestamps) and
//! exits non-zero otherwise. Used by the `trace-validate` step in
//! `scripts/ci.sh`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: trace-validate <trace.json>");
            eprintln!("Validates Chrome trace-event JSON (ph/ts/pid/tid schema,");
            eprintln!("monotone per-track timestamps). Exits 1 on violation.");
            return ExitCode::from(2);
        }
    };
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace-validate: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match kacc_trace::validate::validate_chrome_json(&json) {
        Ok(s) => {
            println!(
                "trace-validate: OK — {} events, {} tracks, {} spans, {} counter samples",
                s.events, s.tracks, s.spans, s.counters
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace-validate: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
