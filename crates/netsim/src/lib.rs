#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Multi-node cluster experiments over the simulated fabric (§VII-G).
//!
//! The heavy lifting lives in `kacc-machine` (per-node memory systems and
//! page-lock servers joined by per-NIC fluid link servers) — this crate
//! supplies the cluster-level experiment surface:
//!
//! * [`cluster_gather`] / [`cluster_scatter`] — run a rooted collective
//!   across nodes either **single-level** (one flat binomial tree over
//!   point-to-point transfers, the strategy libraries default to when
//!   intra-node gathers are slow) or **two-level** (contention-aware
//!   kernel-assisted intra-node phase + leader exchange, the paper's
//!   design), and report the latency;
//! * shape checks that reproduce Fig 17's observation: the two-level
//!   design wins, and its advantage *grows* with node count.

use kacc_collectives::hierarchical::{hier_gather, hier_gather_pipelined, hier_scatter};
use kacc_comm::{BufId, Comm, Result};
use kacc_machine::{run_cluster, TeamRun};
use kacc_model::{ArchProfile, FabricParams};
use kacc_mpi::{ptcoll, Protocol};

/// Strategy for a multi-node rooted collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiNodeStrategy {
    /// One flat (direct) pt2pt exchange with the global root, oblivious
    /// to node boundaries — the large-message default of production
    /// libraries when intra-node gathers are slow (§VII-G).
    SingleLevel,
    /// Two-level: contention-aware kernel-assisted intra-node phase with
    /// the given throttle factor, then leader-to-root bulk transfers.
    TwoLevel {
        /// Intra-node throttle factor.
        k: usize,
    },
    /// Two-level with wave pipelining: leaders ship each completed
    /// throttle wave immediately, overlapping intra- and inter-node
    /// transfers (§VII-G's suggested refinement).
    TwoLevelPipelined {
        /// Intra-node throttle factor (also the wave width).
        k: usize,
    },
}

/// The pt2pt protocol single-level trees use for a message of `len`.
fn single_level_proto(len: usize) -> Protocol {
    Protocol::for_len(len, 16 * 1024)
}

/// Gather `count` bytes per rank to global rank 0 across a cluster.
/// Returns the simulated latency in nanoseconds.
pub fn cluster_gather(
    arch: &ArchProfile,
    nodes: usize,
    ranks_per_node: usize,
    fabric: FabricParams,
    count: usize,
    strategy: MultiNodeStrategy,
) -> TeamRun {
    let (run, _) = run_cluster(arch, nodes, ranks_per_node, fabric, move |comm| {
        gather_body(comm, count, strategy).expect("cluster gather body")
    });
    run
}

fn gather_body<C: Comm + ?Sized>(
    comm: &mut C,
    count: usize,
    strategy: MultiNodeStrategy,
) -> Result<()> {
    let me = comm.rank();
    let p = comm.size();
    let sb = comm.alloc(count);
    let rb: Option<BufId> = (me == 0).then(|| comm.alloc(p * count));
    match strategy {
        MultiNodeStrategy::SingleLevel => {
            ptcoll::gather_direct(comm, sb, rb, count, 0, single_level_proto(count))
        }
        MultiNodeStrategy::TwoLevel { k } => hier_gather(comm, Some(sb), rb, count, 0, k),
        MultiNodeStrategy::TwoLevelPipelined { k } => {
            hier_gather_pipelined(comm, Some(sb), rb, count, 0, k)
        }
    }
}

/// Scatter `count` bytes per rank from global rank 0 across a cluster.
pub fn cluster_scatter(
    arch: &ArchProfile,
    nodes: usize,
    ranks_per_node: usize,
    fabric: FabricParams,
    count: usize,
    strategy: MultiNodeStrategy,
) -> TeamRun {
    let (run, _) = run_cluster(arch, nodes, ranks_per_node, fabric, move |comm| {
        scatter_body(comm, count, strategy).expect("cluster scatter body")
    });
    run
}

fn scatter_body<C: Comm + ?Sized>(
    comm: &mut C,
    count: usize,
    strategy: MultiNodeStrategy,
) -> Result<()> {
    let me = comm.rank();
    let p = comm.size();
    let sb: Option<BufId> = (me == 0).then(|| comm.alloc(p * count));
    let rb = comm.alloc(count);
    match strategy {
        MultiNodeStrategy::SingleLevel => {
            ptcoll::scatter_direct(comm, sb, rb, count, 0, single_level_proto(count))
        }
        MultiNodeStrategy::TwoLevel { k } | MultiNodeStrategy::TwoLevelPipelined { k } => {
            hier_scatter(comm, sb, Some(rb), count, 0, k)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_collectives::verify::{contribution, diff, gather_expected, scatter_sendbuf};
    use kacc_comm::CommExt;

    fn mini_arch() -> ArchProfile {
        let mut a = ArchProfile::knl();
        a.cores_per_socket = 16;
        a
    }

    #[test]
    fn cluster_placement_is_block_distributed() {
        let (_, nodes) = run_cluster(&mini_arch(), 3, 4, FabricParams::ib_edr(), |comm| {
            (0..comm.size())
                .map(|r| comm.node_of(r))
                .collect::<Vec<_>>()
        });
        for per_rank in &nodes {
            assert_eq!(per_rank, &vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        }
    }

    #[test]
    fn cma_across_nodes_is_rejected() {
        let (_, results) = run_cluster(&mini_arch(), 2, 2, FabricParams::ib_edr(), |comm| {
            if comm.rank() == 0 {
                let b = comm.alloc(64);
                let tok = comm.expose(b).unwrap();
                comm.ctrl_send(2, kacc_comm::Tag::user(1), &tok.to_bytes())
                    .unwrap();
                comm.wait_notify(2, kacc_comm::Tag::user(2)).unwrap();
                true
            } else if comm.rank() == 2 {
                let raw = comm.ctrl_recv(0, kacc_comm::Tag::user(1)).unwrap();
                let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(64);
                let err = comm.cma_read(tok, 0, dst, 0, 64);
                comm.notify(0, kacc_comm::Tag::user(2)).unwrap();
                err.is_err()
            } else {
                true
            }
        });
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn hier_gather_is_correct_across_nodes() {
        let count = 3000;
        let (run, results) = run_cluster(&mini_arch(), 2, 4, FabricParams::ib_edr(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == 0).then(|| comm.alloc(p * count));
            hier_gather(comm, Some(sb), rb, count, 0, 2).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        if let Some(d) = diff(&results[0], &gather_expected(8, count)) {
            panic!("hier gather: {d}");
        }
        assert_eq!(run.mail_pending, 0);
    }

    #[test]
    fn hier_scatter_is_correct_across_nodes() {
        let count = 2000;
        let p = 9;
        let (_, results) = run_cluster(&mini_arch(), 3, 3, FabricParams::ib_edr(), move |comm| {
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            hier_scatter(comm, sb, Some(rb), count, 0, 2).unwrap();
            comm.read_all(rb).unwrap()
        });
        for (r, got) in results.iter().enumerate() {
            if let Some(d) = diff(got, &kacc_collectives::verify::scatter_expected(r, count)) {
                panic!("hier scatter rank {r}: {d}");
            }
        }
    }

    #[test]
    fn single_level_gather_is_correct_across_nodes() {
        let count = 1500;
        let (_, results) = run_cluster(&mini_arch(), 2, 3, FabricParams::ib_edr(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == 0).then(|| comm.alloc(p * count));
            ptcoll::gather_direct(comm, sb, rb, count, 0, single_level_proto(count)).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        if let Some(d) = diff(&results[0], &gather_expected(6, count)) {
            panic!("single-level gather: {d}");
        }
    }

    #[test]
    fn pipelined_hier_gather_is_correct_and_faster() {
        let count = 48 * 1024;
        let rpn = 8;
        // Correctness with data verification.
        let (_, results) = run_cluster(&mini_arch(), 2, rpn, FabricParams::ib_edr(), move |comm| {
            let me = comm.rank();
            let p = comm.size();
            let sb = comm.alloc_with(&contribution(me, 512));
            let rb = (me == 0).then(|| comm.alloc(p * 512));
            kacc_collectives::hierarchical::hier_gather_pipelined(comm, Some(sb), rb, 512, 0, 3)
                .unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        if let Some(d) = diff(&results[0], &gather_expected(2 * rpn, 512)) {
            panic!("pipelined hier gather: {d}");
        }
        // Overlap should not be slower than the barriered two-level.
        let arch = ArchProfile::knl();
        let plain = cluster_gather(
            &arch,
            4,
            16,
            FabricParams::omni_path(),
            count,
            MultiNodeStrategy::TwoLevel { k: 4 },
        )
        .end_ns;
        let pipe = cluster_gather(
            &arch,
            4,
            16,
            FabricParams::omni_path(),
            count,
            MultiNodeStrategy::TwoLevelPipelined { k: 4 },
        )
        .end_ns;
        assert!(
            pipe <= plain,
            "pipelining should overlap transfers: {pipe} vs {plain}"
        );
    }

    #[test]
    fn two_level_gather_beats_single_level_and_scales() {
        // Fig 17's shape: two-level wins, and the improvement factor
        // grows with node count.
        let arch = ArchProfile::knl();
        let count = 32 * 1024;
        let rpn = 16;
        let mut improvements = Vec::new();
        for nodes in [2usize, 4, 8] {
            let single = cluster_gather(
                &arch,
                nodes,
                rpn,
                FabricParams::omni_path(),
                count,
                MultiNodeStrategy::SingleLevel,
            )
            .end_ns;
            let two = cluster_gather(
                &arch,
                nodes,
                rpn,
                FabricParams::omni_path(),
                count,
                MultiNodeStrategy::TwoLevel { k: 4 },
            )
            .end_ns;
            assert!(
                two < single,
                "{nodes} nodes: two-level {two} !< single {single}"
            );
            improvements.push(single as f64 / two as f64);
        }
        assert!(
            improvements.windows(2).all(|w| w[1] > w[0]),
            "improvement should grow with node count: {improvements:?}"
        );
    }
}
