//! Determinism suite: the parallel sweep harness and the kernel fast
//! path must never change a single bit of any result.
//!
//! Three claims are pinned here (see DESIGN.md §11.3):
//!
//! 1. **Repeatability** — running the same (arch, collective, p, msize)
//!    point twice yields bitwise-identical `TeamRun` and
//!    `ScheduleReport` values.
//! 2. **Job-count independence** — a fixed figure grid computed under
//!    `--jobs 1` and `--jobs 8` renders to identical CSV bytes.
//! 3. **Trace stability** — two traced runs of a contended collective
//!    produce identical Chrome-trace JSON: same virtual timestamps,
//!    same dispatch order, modulo nothing.
//!
//! Everything lives in one `#[test]` because the worker count is a
//! process-wide knob (`par::set_jobs`); concurrent tests mutating it
//! would still be *correct* (output is job-count independent — that is
//! the theorem) but a single test keeps the jobs-1-vs-8 comparison
//! honestly sequenced.

use kacc_bench::figs::registry;
use kacc_bench::par;
use kacc_collectives::{scatterv_with_report, ScatterAlgo, ScheduleReport};
use kacc_comm::Comm;
use kacc_machine::{run_team, run_team_traced, TeamRun};
use kacc_model::ArchProfile;
use kacc_trace::chrome_trace_json;

/// One grid point: contended scatter with per-step accounting.
fn point(arch: &ArchProfile, p: usize, eta: usize) -> (TeamRun, Vec<Option<ScheduleReport>>) {
    run_team(arch, p, move |comm| {
        let me = comm.rank();
        let sb = (me == 0).then(|| comm.alloc(p * eta));
        let rb = comm.alloc(eta);
        let counts = vec![eta; p];
        scatterv_with_report(
            comm,
            ScatterAlgo::ParallelRead,
            sb,
            Some(rb),
            &counts,
            None,
            0,
        )
        .expect("scatter")
    })
}

#[test]
fn grid_repeats_job_counts_and_traces_are_bitwise_identical() {
    // (1) Repeatability over a fixed (arch, p, msize) grid.
    for arch in [ArchProfile::knl(), ArchProfile::broadwell()] {
        for p in [4usize, 8] {
            for eta in [4usize << 10, 64 << 10] {
                let (run_a, rep_a) = point(&arch, p, eta);
                let (run_b, rep_b) = point(&arch, p, eta);
                assert_eq!(
                    run_a, run_b,
                    "TeamRun differs on repeat: {} p={p} eta={eta}",
                    arch.name
                );
                assert_eq!(
                    rep_a, rep_b,
                    "ScheduleReport differs on repeat: {} p={p} eta={eta}",
                    arch.name
                );
                assert_eq!(run_a.mail_pending, 0);
                assert!(run_a.events > 0, "events wired through TeamRun");
            }
        }
    }

    // (2) Job-count independence: a real figure artifact (fig9 exercises
    // three transports x two architectures) rendered to CSV under 1 vs 8
    // workers. CSV is the repro binary's artifact format, so byte
    // equality here is exactly the "bitwise-identical result CSVs"
    // acceptance gate.
    let fig9 = registry()
        .into_iter()
        .find(|(name, _)| *name == "fig9")
        .expect("fig9 registered")
        .1;
    let csv_of = |jobs: usize| -> Vec<String> {
        par::set_jobs(jobs);
        let charts = fig9(true);
        par::set_jobs(1);
        charts.iter().map(|c| c.to_csv(|x| x.to_string())).collect()
    };
    let seq = csv_of(1);
    let par8 = csv_of(8);
    assert_eq!(seq, par8, "fig9 CSVs differ between --jobs 1 and --jobs 8");
    assert!(!seq.is_empty() && seq.iter().all(|c| !c.is_empty()));

    // (3) Chrome-trace stability: identical JSON across repeats — the
    // scheduler's dispatch instants (fast path included) carry the same
    // virtual timestamps every time.
    let traced = || {
        let arch = ArchProfile::broadwell();
        let (_, _, events) = run_team_traced(&arch, 6, |comm| {
            let me = comm.rank();
            let eta = 16 << 10;
            let sb = (me == 0).then(|| comm.alloc(6 * eta));
            let rb = comm.alloc(eta);
            let counts = vec![eta; 6];
            scatterv_with_report(
                comm,
                ScatterAlgo::ThrottledRead { k: 2 },
                sb,
                Some(rb),
                &counts,
                None,
                0,
            )
            .expect("scatter");
        });
        chrome_trace_json(&events)
    };
    let t1 = traced();
    let t2 = traced();
    assert_eq!(t1, t2, "Chrome-trace JSON differs between repeats");
    assert!(t1.contains("\"lock\""), "trace captured the machine phases");
}
