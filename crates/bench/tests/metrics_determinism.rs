//! The `--metrics-out` determinism contract, pinned end to end.
//!
//! `kacc-metrics` promises that the registry snapshot is a pure function
//! of *what* was simulated — not of worker interleaving (`--jobs`) and
//! not of which DES engine ran it. This suite spawns the real `repro`
//! binary (fresh process per run, so each snapshot starts from a zeroed
//! registry) on the same quick artifact under `--jobs 1` vs `--jobs 4`
//! and `--engine threads` vs `--engine polled`, and asserts the JSON
//! snapshot **and** the Prometheus text exposition are bitwise-identical
//! byte strings across all four runs.

use std::path::PathBuf;
use std::process::Command;

/// Run `repro --quick fig10 --metrics-out <file>` with the given engine
/// and job count; return the snapshot JSON and `.prom` exposition bytes.
fn metrics_run(dir: &std::path::Path, tag: &str, engine: &str, jobs: usize) -> (Vec<u8>, Vec<u8>) {
    let out: PathBuf = dir.join(format!("metrics_{tag}.json"));
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--engine",
            engine,
            "--jobs",
            &jobs.to_string(),
            "--metrics-out",
        ])
        .arg(&out)
        .arg("fig10")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro failed for {tag}");
    let json = std::fs::read(&out).expect("read snapshot json");
    let prom = std::fs::read(out.with_extension("json.prom")).expect("read exposition");
    (json, prom)
}

#[test]
fn metrics_snapshot_identical_across_jobs_and_engines() {
    let dir = std::env::temp_dir().join(format!("kacc-metrics-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    let reference = metrics_run(&dir, "threads-j1", "threads", 1);
    let variants = [
        ("threads-j4", "threads", 4),
        ("polled-j1", "polled", 1),
        ("polled-j4", "polled", 4),
    ];
    for (tag, engine, jobs) in variants {
        let got = metrics_run(&dir, tag, engine, jobs);
        assert_eq!(
            reference.0, got.0,
            "{tag}: metrics JSON differs from threads-j1"
        );
        assert_eq!(
            reference.1, got.1,
            "{tag}: Prometheus exposition differs from threads-j1"
        );
    }

    // Sanity on content: the snapshot must actually carry the new
    // instrumentation, not vacuously match as empty files.
    let json = String::from_utf8(reference.0).expect("utf8");
    for name in [
        "sim.events",
        "sim.wake.fanout",
        "sim.queue.len.hwm",
        "machine.lock.queue_depth",
        "machine.transport.cma.ops",
        "coll.exec.ns",
        "coll.step.cma_read.ns",
        "coll.recovery.fallbacks",
    ] {
        assert!(json.contains(name), "snapshot is missing metric {name}");
    }
    let prom = String::from_utf8(reference.1).expect("utf8");
    assert!(prom.contains("# TYPE kacc_sim_events counter"));
    assert!(prom.contains("kacc_machine_lock_queue_depth_bucket"));

    std::fs::remove_dir_all(&dir).ok();
}
