//! One module per evaluation artifact group; every public function
//! regenerates a paper table/figure and returns [`Chart`]s.
//!
//! * [`micro`] — Fig 1 (workload), Figs 2–6 and Tables III–IV
//!   (contention microbenchmarks and model extraction), Table V.
//! * [`algos`] — Figs 7–12 (algorithm comparisons and model validation).
//! * [`libs`] — Figs 13–18 and Tables VI–VII (library comparisons and
//!   multi-node scaling).
//! * [`failures`] — the PR-8 robustness study: completion time of the
//!   survivable collectives vs injected rank failures.

pub mod algos;
pub mod failures;
pub mod libs;
pub mod micro;

use crate::render::Chart;

/// A regenerable artifact: takes `quick` and returns its chart panels.
pub type ArtifactFn = fn(bool) -> Vec<Chart>;

/// Named registry of every regenerable artifact, in paper order.
pub fn registry() -> Vec<(&'static str, ArtifactFn)> {
    vec![
        ("fig1", micro::fig01 as ArtifactFn),
        ("fig2", micro::fig02),
        ("fig3", micro::fig03),
        ("fig4", micro::fig04),
        ("table3", micro::table3),
        ("table4", micro::table4),
        ("fig5", micro::fig05),
        ("fig6", micro::fig06),
        ("fig7", algos::fig07),
        ("fig8", algos::fig08),
        ("fig9", algos::fig09),
        ("fig10", algos::fig10),
        ("fig11", algos::fig11),
        ("fig12", algos::fig12),
        ("table5", micro::table5),
        ("table6", libs::table6),
        ("table7", libs::table7),
        ("fig13", libs::fig13),
        ("fig14", libs::fig14),
        ("fig15", libs::fig15),
        ("fig16", libs::fig16),
        ("fig17", libs::fig17),
        ("fig18", libs::fig18),
        ("failures", failures::fig_failures),
        ("breakdown", crate::tracedemo::breakdown),
    ]
}

/// Paper platforms with their full-subscription process counts,
/// shrunk under `quick` for smoke testing.
pub(crate) fn platforms(quick: bool) -> Vec<(kacc_model::ArchProfile, usize)> {
    kacc_model::ArchProfile::all()
        .into_iter()
        .map(|a| {
            let p = if quick {
                a.default_procs.min(24)
            } else {
                a.default_procs
            };
            (a, p)
        })
        .collect()
}

/// Paper throttle-factor sets per architecture (Figs 7–8 legends).
pub(crate) fn throttles(arch: &kacc_model::ArchProfile, p: usize) -> Vec<usize> {
    let ks: &[usize] = match arch.name.as_str() {
        "KNL" => &[2, 4, 8, 16],
        "Broadwell" => &[2, 4, 7, 14],
        _ => &[2, 4, 10, 20],
    };
    ks.iter().copied().filter(|&k| k < p).collect()
}

/// Evaluate one simulated point per message size, fanned across the
/// `--jobs` worker pool (order-preserving and deterministic for every
/// job count; see [`crate::par`]).
pub(crate) fn par_ys(sizes: &[usize], f: impl Fn(usize) -> f64 + Send + Sync) -> Vec<f64> {
    crate::par::pmap(sizes.to_vec(), f)
}

/// Message sweep, shortened under `quick`.
pub(crate) fn sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![4 << 10, 64 << 10, 1 << 20]
    } else {
        crate::size_sweep()
    }
}
