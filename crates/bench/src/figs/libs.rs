//! Library-comparison artifacts: Figs 13–18, Tables VI–VII, and the
//! Fig 17 multi-node scaling study.

use super::{par_ys, platforms, sweep};
use crate::measure::{library_ns, Coll};
use crate::render::{Chart, Series};
use kacc_model::ArchProfile;
use kacc_mpi::Library;
use kacc_netsim::{cluster_gather, MultiNodeStrategy};

const US: f64 = 1000.0;

/// Intel MPI was not available on the OpenPOWER system (§VII).
fn libraries_for(arch: &ArchProfile) -> Vec<Library> {
    if arch.name == "Power8" {
        vec![Library::Kacc, Library::Mvapich2, Library::OpenMpi]
    } else {
        vec![
            Library::Kacc,
            Library::Mvapich2,
            Library::IntelMpi,
            Library::OpenMpi,
        ]
    }
}

fn lib_chart(arch: &ArchProfile, p: usize, coll: Coll, id: &str, sizes: &[usize]) -> Chart {
    let mut c = Chart::new(
        id,
        format!(
            "MPI_{} vs libraries, {} ({p} processes)",
            coll.label(),
            arch.name
        ),
        "Message Size (Bytes)",
        "Latency (us)",
    );
    for lib in libraries_for(arch) {
        let ys = par_ys(sizes, |eta| library_ns(arch, p, eta, coll, lib) / US);
        c.series.push(Series::new(lib.label(), sizes, &ys));
    }
    c
}

fn per_arch_lib_fig(coll: Coll, fig: &str, quick: bool, skip_power8: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .filter(|(a, _)| !(skip_power8 && a.name == "Power8"))
        .map(|(arch, p)| {
            let sizes = if coll == Coll::Alltoall || coll == Coll::Allgather {
                if quick {
                    vec![4 << 10, 64 << 10]
                } else {
                    crate::size_sweep_short()
                }
            } else {
                sweep(quick)
            };
            lib_chart(
                &arch,
                p,
                coll,
                &format!("{fig}-{}", arch.name.to_lowercase()),
                &sizes,
            )
        })
        .collect()
}

/// Fig 13: MPI_Scatter against the library personas.
pub fn fig13(quick: bool) -> Vec<Chart> {
    per_arch_lib_fig(Coll::Scatter, "fig13", quick, false)
}

/// Fig 14: MPI_Gather against the library personas.
pub fn fig14(quick: bool) -> Vec<Chart> {
    per_arch_lib_fig(Coll::Gather, "fig14", quick, false)
}

/// Fig 15: MPI_Alltoall against the library personas (KNL, Broadwell).
pub fn fig15(quick: bool) -> Vec<Chart> {
    per_arch_lib_fig(Coll::Alltoall, "fig15", quick, true)
}

/// Fig 16: MPI_Allgather against the library personas (KNL, Broadwell).
pub fn fig16(quick: bool) -> Vec<Chart> {
    per_arch_lib_fig(Coll::Allgather, "fig16", quick, true)
}

/// Fig 18: MPI_Bcast against the library personas (Broadwell, Power8).
pub fn fig18(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .filter(|(a, _)| a.name != "KNL")
        .map(|(arch, p)| {
            let sizes = sweep(quick);
            let mut c = lib_chart(
                &arch,
                p,
                Coll::Bcast,
                &format!("fig18-{}", arch.name.to_lowercase()),
                &sizes,
            );
            c.notes.push(
                "the production design auto-selects shm below the CMA crossover \
                 (Tuner::bcast_prefers_shm)"
                    .into(),
            );
            c
        })
        .collect()
}

/// Fig 17: multi-node Gather on 2/4/8 KNL nodes — single-level direct
/// pt2pt vs the two-level contention-aware design.
pub fn fig17(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::knl();
    let fabric = arch.default_fabric();
    let rpn = if quick { 8 } else { 64 };
    let node_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let sizes = if quick {
        vec![4 << 10, 64 << 10]
    } else {
        crate::size_sweep_short()
    };
    node_counts
        .iter()
        .map(|&nodes| {
            let mut c = Chart::new(
                format!("fig17-{nodes}nodes"),
                format!(
                    "MPI_Gather on {nodes} KNL nodes ({} processes), {}",
                    nodes * rpn,
                    fabric.name
                ),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            let single = par_ys(&sizes, |eta| {
                cluster_gather(
                    &arch,
                    nodes,
                    rpn,
                    fabric.clone(),
                    eta,
                    MultiNodeStrategy::SingleLevel,
                )
                .end_ns as f64
                    / US
            });
            c.series
                .push(Series::new("Single-level (libraries)", &sizes, &single));
            let two = par_ys(&sizes, |eta| {
                cluster_gather(
                    &arch,
                    nodes,
                    rpn,
                    fabric.clone(),
                    eta,
                    MultiNodeStrategy::TwoLevel { k: 4 },
                )
                .end_ns as f64
                    / US
            });
            c.series
                .push(Series::new("Two-level (proposed)", &sizes, &two));
            let piped = par_ys(&sizes, |eta| {
                cluster_gather(
                    &arch,
                    nodes,
                    rpn,
                    fabric.clone(),
                    eta,
                    MultiNodeStrategy::TwoLevelPipelined { k: 4 },
                )
                .end_ns as f64
                    / US
            });
            c.series
                .push(Series::new("Two-level pipelined", &sizes, &piped));
            let best = single
                .iter()
                .zip(&piped)
                .map(|(s, t)| s / t)
                .fold(f64::MIN, f64::max);
            c.notes
                .push(format!("max improvement (pipelined): {best:.2}x"));
            c
        })
        .collect()
}

/// Table VI: maximum speedup of the proposed designs over each library
/// across the full message sweep.
pub fn table6(quick: bool) -> Vec<Chart> {
    speedup_table("table6", quick, false)
}

/// Table VII: speedup at the largest evaluated message size.
pub fn table7(quick: bool) -> Vec<Chart> {
    speedup_table("table7", quick, true)
}

fn speedup_table(id: &str, quick: bool, largest_only: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let mut c = Chart::new(
                format!("{id}-{}", arch.name.to_lowercase()),
                format!(
                    "{} over state-of-the-art libraries, {} ({p} processes)",
                    if largest_only {
                        "Speedup at the largest message size"
                    } else {
                        "Maximum speedup"
                    },
                    arch.name
                ),
                "Collective index (0=Bcast 1=Scatter 2=Gather 3=Allgather 4=Alltoall)",
                "Speedup (x)",
            );
            let heavy = |coll: Coll| coll == Coll::Alltoall || coll == Coll::Allgather;
            for lib in libraries_for(&arch)
                .into_iter()
                .filter(|l| *l != Library::Kacc)
            {
                let mut ys = Vec::new();
                let xs: Vec<usize> = (0..Coll::all().len()).collect();
                for coll in Coll::all() {
                    let sizes: Vec<usize> = if largest_only {
                        let all = if heavy(coll) {
                            crate::size_sweep_short()
                        } else {
                            crate::size_sweep()
                        };
                        vec![*all.last().expect("size sweeps are non-empty")]
                    } else if quick {
                        vec![16 << 10, 256 << 10]
                    } else if heavy(coll) {
                        crate::size_sweep_short()
                    } else {
                        crate::size_sweep()
                    };
                    let best = par_ys(&sizes, |eta| {
                        let ours = library_ns(&arch, p, eta, coll, Library::Kacc);
                        let theirs = library_ns(&arch, p, eta, coll, lib);
                        theirs / ours
                    })
                    .into_iter()
                    .fold(f64::MIN, f64::max);
                    ys.push(best);
                }
                c.series.push(Series::new(lib.label(), &xs, &ys));
            }
            c
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn table6_proposed_wins_personalized_collectives() {
        // Table VI's key claim: large speedups on Scatter/Gather
        // against every baseline.
        for chart in table6(true) {
            for series in &chart.series {
                let scatter = series.points[1].1;
                let gather = series.points[2].1;
                assert!(
                    scatter > 1.0,
                    "{}: scatter speedup vs {} is {scatter}",
                    chart.id,
                    series.label
                );
                assert!(
                    gather > 1.0,
                    "{}: gather speedup vs {} is {gather}",
                    chart.id,
                    series.label
                );
            }
        }
    }

    #[test]
    fn fig17_two_level_wins_rendezvous_sizes() {
        // At sizes above the rendezvous threshold the two-level design
        // wins at every node count. (The growth of the improvement with
        // node count is asserted at full scale by kacc-netsim's
        // two_level_gather_beats_single_level_and_scales test.)
        let charts = fig17(true);
        for c in &charts {
            let eta = 64 << 10;
            let single = c.series[0].at(eta).unwrap();
            let two = c.series[1].at(eta).unwrap();
            assert!(two < single, "{}: {two} !< {single}", c.id);
        }
    }
}
