//! Motivation and microbenchmark artifacts: Fig 1 (workload trends),
//! Figs 2–6 (CMA contention characterization), Tables III–V.

use super::{par_ys, platforms, sweep};
use crate::measure::{breakdown, one_to_all_read_ns, pairs_read_ns};
use crate::render::{Chart, Series};
use crate::workload;
use kacc_machine::SimProbe;
use kacc_model::extract::{extract_params, measure_gamma};
use kacc_model::gamma::fit_gamma;
use kacc_model::ArchProfile;

const US: f64 = 1000.0; // ns per µs

/// Fig 1: jobs submitted and CPU hours consumed by job size, from the
/// synthetic XSEDE-like trace (see `workload` for the substitution).
pub fn fig01(quick: bool) -> Vec<Chart> {
    let n = if quick { 50_000 } else { 1_000_000 };
    let jobs = workload::generate(n, 0x5EED);
    let hist = workload::histogram(&jobs);
    let (job_share, hour_share) = workload::small_job_share(&jobs);

    let mut a = Chart::new(
        "fig1a",
        "Number of Jobs Submitted by (Avg) Number of Nodes in Job",
        "Node-count bucket index",
        "Jobs (thousands)",
    );
    let xs: Vec<usize> = (0..hist.len()).collect();
    a.series.push(Series::new(
        "Jobs",
        &xs,
        &hist
            .iter()
            .map(|(_, c, _)| *c as f64 / 1000.0)
            .collect::<Vec<_>>(),
    ));
    a.notes.push(format!(
        "buckets: {}",
        hist.iter()
            .map(|(l, _, _)| l.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    a.notes.push(format!(
        "jobs with <= 9 nodes: {:.1}% of submissions",
        job_share * 100.0
    ));

    let mut b = Chart::new(
        "fig1b",
        "Total CPU Hours Consumed by (Avg) Number of Nodes in Job",
        "Node-count bucket index",
        "CPU Hours (millions)",
    );
    b.series.push(Series::new(
        "CPU Hours",
        &xs,
        &hist.iter().map(|(_, _, h)| *h / 1.0e6).collect::<Vec<_>>(),
    ));
    b.notes.push(format!(
        "jobs with <= 9 nodes: {:.1}% of CPU hours",
        hour_share * 100.0
    ));
    vec![a, b]
}

/// Fig 2: impact of the communication pattern on CMA read latency (KNL):
/// (a) all-to-all pairs, (b) one-to-all same buffer, (c) one-to-all
/// different buffers.
pub fn fig02(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::knl();
    let readers: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 4, 8, 16, 32, 64]
    };
    let sizes = sweep(quick);

    let make = |id: &str, title: &str, f: &(dyn Fn(usize, usize) -> f64 + Sync)| {
        let mut c = Chart::new(id, title, "Message Size (Bytes)", "CMA Read Latency (us)");
        for &r in readers {
            let ys = par_ys(&sizes, |eta| f(r, eta) / US);
            c.series
                .push(Series::new(format!("{r} Readers"), &sizes, &ys));
        }
        c
    };

    let a = make(
        "fig2a",
        "Different Source Processes (All-to-all)",
        &|r, eta| pairs_read_ns(&arch, r, eta),
    );
    let b = make(
        "fig2b",
        "Same Process, Same Buffer (One-to-all)",
        &|r, eta| one_to_all_read_ns(&arch, r, eta, true),
    );
    let c = make(
        "fig2c",
        "Same Process, Different Buffers (One-to-all)",
        &|r, eta| one_to_all_read_ns(&arch, r, eta, false),
    );
    vec![a, b, c]
}

/// Fig 3: one-to-all latency vs concurrent readers on all three
/// architectures.
pub fn fig03(quick: bool) -> Vec<Chart> {
    let sizes = sweep(quick);
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let readers: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
                .into_iter()
                .filter(|&r| r < p)
                .collect();
            let mut c = Chart::new(
                format!("fig3-{}", arch.name.to_lowercase()),
                format!(
                    "One-to-all CMA read, {} ({} hardware threads)",
                    arch.name, p
                ),
                "Concurrent Readers",
                "CMA Read Latency (us)",
            );
            for &eta in &sizes {
                let ys = par_ys(&readers, |r| one_to_all_read_ns(&arch, r, eta, false) / US);
                c.series
                    .push(Series::new(crate::size_label(eta), &readers, &ys));
            }
            c
        })
        .collect()
}

/// Fig 4: step breakdown of one-to-all CMA reads on Broadwell for
/// varying page counts and contention levels.
pub fn fig04(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::broadwell();
    let pages: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        vec![16, 64, 128, 256, 512]
    };
    [1usize, 4, 27]
        .into_iter()
        .map(|readers| {
            let label = if readers == 1 {
                "No Contention".to_string()
            } else {
                format!("{readers} Readers")
            };
            let mut c = Chart::new(
                format!("fig4-r{readers}"),
                format!("CMA read step breakdown, Broadwell, {label}"),
                "Number of Pages",
                "Time Taken (us)",
            );
            let mut syscall = Vec::new();
            let mut check = Vec::new();
            let mut lock = Vec::new();
            let mut pin = Vec::new();
            let mut copy = Vec::new();
            for b in crate::par::pmap(pages.clone(), |n| breakdown(&arch, readers, n)) {
                syscall.push(b.syscall_ns / US);
                check.push(b.check_ns / US);
                lock.push(b.lock_ns / US);
                pin.push(b.pin_ns / US);
                copy.push(b.copy_ns / US);
            }
            c.series.push(Series::new("Syscall", &pages, &syscall));
            c.series
                .push(Series::new("Permission Check", &pages, &check));
            c.series.push(Series::new("Acquire Locks", &pages, &lock));
            c.series.push(Series::new("Pin Pages", &pages, &pin));
            c.series.push(Series::new("Copy Data", &pages, &copy));
            c
        })
        .collect()
}

/// Table III: step isolation via degenerate iovec counts (T₁–T₄).
pub fn table3(quick: bool) -> Vec<Chart> {
    let n_pages = if quick { 50 } else { 200 };
    platforms(quick)
        .into_iter()
        .map(|(arch, _)| {
            let mut probe = SimProbe::new(arch.clone());
            let ex = extract_params(&mut probe, n_pages);
            let mut c = Chart::new(
                format!("table3-{}", arch.name.to_lowercase()),
                format!(
                    "Time taken by CMA transfer steps, {} (N = {n_pages} pages)",
                    arch.name
                ),
                "Step (1=Syscall 2=+Check 3=+Lock/Pin 4=+Copy)",
                "Time (us)",
            );
            c.series.push(Series::new(
                "Measured",
                &[1, 2, 3, 4],
                &[ex.t1_ns / US, ex.t2_ns / US, ex.t3_ns / US, ex.t4_ns / US],
            ));
            c.notes.push(format!(
                "derived: alpha = {:.2} us, l = {:.3} us/page, beta = {:.2} GB/s",
                ex.alpha_ns / US,
                ex.l_ns / US,
                ex.bandwidth_gbps()
            ));
            c
        })
        .collect()
}

/// Table IV: model parameters per architecture, extracted from
/// simulated probes and fitted with NLLS (paper values in the notes).
pub fn table4(quick: bool) -> Vec<Chart> {
    let n_pages = if quick { 50 } else { 200 };
    let readers: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let paper: &[(&str, f64, f64, f64, usize)] = &[
        ("KNL", 1.43, 3.29, 0.25, 4096),
        ("Broadwell", 0.98, 3.1, 0.11, 4096),
        ("Power8", 0.75, 3.7, 0.53, 65536),
    ];
    let mut c = Chart::new(
        "table4",
        "Empirically obtained model parameters (extracted from the simulator)",
        "Architecture index (0=KNL 1=Broadwell 2=Power8)",
        "Parameter value",
    );
    let mut alphas = Vec::new();
    let mut betas = Vec::new();
    let mut ls = Vec::new();
    let mut gamma_a = Vec::new();
    let mut gamma_b = Vec::new();
    for (idx, (arch, _)) in platforms(quick).into_iter().enumerate() {
        let mut probe = SimProbe::new(arch.clone());
        let ex = extract_params(&mut probe, n_pages);
        alphas.push(ex.alpha_ns / US);
        betas.push(ex.bandwidth_gbps());
        ls.push(ex.l_ns / US);
        let points = measure_gamma(&mut probe, readers, &[50]);
        let fit = fit_gamma(&points).expect("gamma fit");
        if let kacc_model::GammaModel::Quadratic { a, b } = fit.model {
            gamma_a.push(a);
            gamma_b.push(b);
        }
        let (name, pa, pb, pl, ps) = paper[idx.min(2)];
        c.notes.push(format!(
            "{name}: paper alpha={pa}us beta={pb}GB/s l={pl}us s={ps}B",
        ));
    }
    let xs: Vec<usize> = (0..alphas.len()).collect();
    c.series.push(Series::new("alpha (us)", &xs, &alphas));
    c.series.push(Series::new("beta (GB/s)", &xs, &betas));
    c.series.push(Series::new("l (us/page)", &xs, &ls));
    c.series
        .push(Series::new("gamma a (c^2 coeff)", &xs, &gamma_a));
    c.series
        .push(Series::new("gamma b (c coeff)", &xs, &gamma_b));
    vec![c]
}

/// Fig 5: determination of the contention factor γ with page-count
/// curves and the NLLS best fit.
pub fn fig05(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let readers: Vec<usize> = [2usize, 4, 8, 16, 32, 64, 128]
                .into_iter()
                .filter(|&r| r < p)
                .collect();
            let mut probe = SimProbe::new(arch.clone());
            let mut c = Chart::new(
                format!("fig5-{}", arch.name.to_lowercase()),
                format!("Contention factor gamma, {}", arch.name),
                "Concurrent Readers",
                "Contention Factor",
            );
            let page_counts: &[usize] = if quick { &[50] } else { &[10, 50, 100] };
            let mut avg = vec![0.0f64; readers.len()];
            for &n in page_counts {
                let pts = measure_gamma(&mut probe, &readers, &[n]);
                for (i, pt) in pts.iter().enumerate() {
                    avg[i] += pt.gamma / page_counts.len() as f64;
                }
                c.series.push(Series::new(
                    format!("{n} Pages"),
                    &readers,
                    &pts.iter().map(|p| p.gamma).collect::<Vec<_>>(),
                ));
            }
            c.series.push(Series::new("Average", &readers, &avg));
            let pts: Vec<kacc_model::gamma::GammaPoint> = readers
                .iter()
                .zip(&avg)
                .map(|(&r, &g)| kacc_model::gamma::GammaPoint { c: r, gamma: g })
                .collect();
            if let Ok(fit) = fit_gamma(&pts) {
                let ys: Vec<f64> = readers.iter().map(|&r| fit.model.eval(r)).collect();
                c.series.push(Series::new("Best Fit (NLLS)", &readers, &ys));
                if let kacc_model::GammaModel::Quadratic { a, b } = fit.model {
                    c.notes
                        .push(format!("fit: gamma(c) = {a:.4} c^2 + {b:.4} c"));
                }
            }
            c
        })
        .collect()
}

/// Fig 6: CMA read throughput relative to a single reader.
pub fn fig06(quick: bool) -> Vec<Chart> {
    let sizes = sweep(quick);
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let readers: Vec<usize> = match arch.name.as_str() {
                "KNL" => vec![1, 2, 4, 8, 16, 32, 64],
                "Broadwell" => vec![1, 2, 4, 8, 16, 28],
                _ => vec![1, 2, 4, 10, 20, 40, 80, 160],
            }
            .into_iter()
            .filter(|&r| r < p.max(2) || r == 1)
            .collect();
            let mut c = Chart::new(
                format!("fig6-{}", arch.name.to_lowercase()),
                format!("Relative CMA read throughput, {}", arch.name),
                "Message Size (Bytes)",
                "Relative Throughput (vs 1 reader)",
            );
            for &r in &readers {
                let ys = par_ys(&sizes, |eta| {
                    let t1 = one_to_all_read_ns(&arch, 1, eta, false);
                    let tr = one_to_all_read_ns(&arch, r, eta, false);
                    // Aggregate throughput ratio: r readers each move
                    // eta bytes in tr vs 1 reader in t1.
                    (r as f64 * eta as f64 / tr) / (eta as f64 / t1)
                });
                let label = if r == 1 {
                    "1 Reader".to_string()
                } else {
                    format!("{r} Readers")
                };
                c.series.push(Series::new(label, &sizes, &ys));
            }
            c
        })
        .collect()
}

/// Table V: hardware specification of the simulated clusters.
pub fn table5(_quick: bool) -> Vec<Chart> {
    let mut c = Chart::new(
        "table5",
        "Hardware specification of the (simulated) clusters",
        "Architecture index (0=KNL 1=Broadwell 2=Power8)",
        "Value",
    );
    let archs = ArchProfile::all();
    let xs: Vec<usize> = (0..archs.len()).collect();
    c.series.push(Series::new(
        "Sockets",
        &xs,
        &archs.iter().map(|a| a.sockets as f64).collect::<Vec<_>>(),
    ));
    c.series.push(Series::new(
        "Cores/Socket",
        &xs,
        &archs
            .iter()
            .map(|a| a.cores_per_socket as f64)
            .collect::<Vec<_>>(),
    ));
    c.series.push(Series::new(
        "Threads/Core",
        &xs,
        &archs
            .iter()
            .map(|a| a.threads_per_core as f64)
            .collect::<Vec<_>>(),
    ));
    c.series.push(Series::new(
        "Page Size (B)",
        &xs,
        &archs.iter().map(|a| a.page_size as f64).collect::<Vec<_>>(),
    ));
    c.series.push(Series::new(
        "Procs Used",
        &xs,
        &archs
            .iter()
            .map(|a| a.default_procs as f64)
            .collect::<Vec<_>>(),
    ));
    for a in &archs {
        c.notes
            .push(format!("{}: fabric {}", a.name, a.default_fabric().name));
    }
    vec![c]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fig01_small_jobs_dominate() {
        let charts = fig01(true);
        assert_eq!(charts.len(), 2);
        let jobs = &charts[0].series[0];
        assert!(
            jobs.points[0].1 > jobs.points[4].1,
            "1-node jobs outnumber 9-16"
        );
    }

    #[test]
    fn fig02_one_to_all_degrades_all_to_all_does_not() {
        let charts = fig02(true);
        let pairs = &charts[0];
        let diff = &charts[2];
        let eta = 64 << 10;
        let p1 = pairs.series[0].at(eta).unwrap();
        let p16 = pairs.series.last().unwrap().at(eta).unwrap();
        let d1 = diff.series[0].at(eta).unwrap();
        let d16 = diff.series.last().unwrap().at(eta).unwrap();
        assert!(p16 < 2.5 * p1, "pairs scale: {p16} vs {p1}");
        assert!(d16 > 4.0 * d1, "one-to-all contends: {d16} vs {d1}");
    }

    #[test]
    fn fig04_lock_grows_with_contention() {
        let charts = fig04(true);
        let solo_lock = charts[0].series[2].points.last().unwrap().1;
        let packed_lock = charts[2].series[2].points.last().unwrap().1;
        assert!(packed_lock > 5.0 * solo_lock);
    }

    #[test]
    fn table4_extraction_matches_profiles() {
        let t = table4(true)[0].clone();
        // β within 10% of the Table IV targets for all three archs.
        let betas = &t.series[1];
        for (i, target) in [3.29f64, 3.1, 3.7].iter().enumerate() {
            let got = betas.points[i].1;
            assert!((got - target).abs() / target < 0.1, "beta[{i}] = {got}");
        }
    }

    #[test]
    fn fig06_has_a_throughput_sweet_spot_on_knl() {
        let charts = fig06(true);
        let knl = &charts[0];
        // At the largest size, some intermediate concurrency beats both
        // 1 reader and the maximum plotted concurrency.
        let eta = *knl.xs().last().unwrap();
        let vals: Vec<f64> = knl.series.iter().map(|s| s.at(eta).unwrap()).collect();
        let best = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(best > vals[0], "some concurrency beats one reader");
        assert!(
            best > *vals.last().unwrap(),
            "max concurrency is past the sweet spot: {vals:?}"
        );
    }
}
