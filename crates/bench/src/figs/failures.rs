//! Robustness artifact: completion time of the survivable collectives
//! as a function of the number of ranks silently killed mid-plan.
//!
//! Each point is one deterministic simulated run: the team starts the
//! collective under a seeded silent-kill fault plan (`ESRCH` on every
//! transport op of the victim from its kill point on), survivors detect
//! the deaths via liveness timeouts, agree on the dead set, shrink, and
//! re-execute over the survivor group. The reported latency is the
//! virtual time at which the last rank finished — including detection
//! stalls, the agreement rounds, backoff, and the re-execution — so the
//! chart is the paper-style "cost of a failure" curve. Runs are
//! dispatched on the engine selected with `--engine` and are
//! bitwise-identical across engines and `--jobs` values.

use crate::measure::{engine, Engine};
use crate::render::{Chart, Series};
use kacc_collectives::{
    run_survivable, run_survivable_polled, AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype,
    GatherAlgo, RecoveryPolicy, ReduceAlgo, ReduceOp, ScatterAlgo, SurvivableOp,
};
use kacc_comm::{Comm, CommExt};
use kacc_fault::{FaultHook, FaultKind, FaultPlan, FaultRule};
use kacc_machine::{run_polled_team_faulty, run_team_faulty, PolledComm, SimComm};
use kacc_model::ArchProfile;

const US: f64 = 1000.0;
const SEED: u64 = 0xC0FFEE;

/// The six survivable entry points, with the same algorithm picks the
/// chaos suites pin.
fn ops(count: usize, root: usize) -> Vec<(&'static str, SurvivableOp)> {
    vec![
        (
            "Scatter (throttled k=2)",
            SurvivableOp::Scatter {
                algo: ScatterAlgo::ThrottledRead { k: 2 },
                count,
                root,
            },
        ),
        (
            "Gather (parallel write)",
            SurvivableOp::Gather {
                algo: GatherAlgo::ParallelWrite,
                count,
                root,
            },
        ),
        (
            "Bcast (2-nomial)",
            SurvivableOp::Bcast {
                algo: BcastAlgo::KNomial { radix: 2 },
                count,
                root,
            },
        ),
        (
            "Allgather (Bruck)",
            SurvivableOp::Allgather {
                algo: AllgatherAlgo::Bruck,
                count,
            },
        ),
        (
            "Alltoall (pairwise)",
            SurvivableOp::Alltoall {
                algo: AlltoallAlgo::Pairwise,
                count,
            },
        ),
        (
            "Reduce (2-nomial sum)",
            SurvivableOp::Reduce {
                algo: ReduceAlgo::KNomialTree { radix: 2 },
                count,
                dtype: Dtype::U64,
                op: ReduceOp::Sum,
                root,
            },
        ),
    ]
}

/// Ranks killed (with their per-rank op-stream kill points) for each
/// failure count. Victims avoid the root so survivors can recover.
fn kills(failures: usize, p: usize) -> Vec<(usize, u64)> {
    match failures {
        0 => vec![],
        1 => vec![(p - 3, 3)],
        _ => vec![(p / 2, 2), (p - 1, 5)],
    }
}

fn kill_hook(kills: &[(usize, u64)]) -> FaultHook {
    let mut plan = FaultPlan::new(SEED);
    for &(d, after) in kills {
        plan = plan.rule(
            FaultRule::new(FaultKind::Transient { errno: 3 }, 1.0)
                .ranks_mask(&[d])
                .after(after),
        );
    }
    plan.hook()
}

/// Virtual completion time (last rank done, ns) of one survivable run
/// on the selected engine. Per-rank errors on killed ranks are expected
/// and ignored; the end time covers every rank's exit.
fn survivable_end_ns(
    arch: &ArchProfile,
    p: usize,
    op: SurvivableOp,
    dead: Vec<(usize, u64)>,
) -> u64 {
    let root = op.root().unwrap_or(0);
    let count = op.count();
    match engine() {
        Engine::Threads => {
            let (run, _) = run_team_faulty(arch, p, kill_hook(&dead), move |comm: &mut SimComm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&vec![me as u8; p * count]);
                let rb = comm.alloc(p * count);
                let (s, r) = bindings(op, me, root, sb, rb);
                let _ = run_survivable(comm, &op, s, r, &RecoveryPolicy::survivable());
            });
            run.end_ns
        }
        Engine::Polled => {
            let (run, _) =
                run_polled_team_faulty(arch, p, kill_hook(&dead), move |rank| async move {
                    let mut comm = PolledComm::new(rank);
                    let sb = comm
                        .alloc_with(&vec![rank as u8; p * count])
                        .expect("alloc");
                    let rb = comm.alloc(p * count);
                    let (s, r) = bindings(op, rank, root, sb, rb);
                    let _ =
                        run_survivable_polled(&mut comm, &op, s, r, &RecoveryPolicy::survivable())
                            .await;
                });
            run.end_ns
        }
    }
}

/// Parent-sized buffer bindings per op shape (both buffers are always
/// allocated; this only picks which are passed).
fn bindings(
    op: SurvivableOp,
    me: usize,
    root: usize,
    sb: kacc_comm::BufId,
    rb: kacc_comm::BufId,
) -> (Option<kacc_comm::BufId>, Option<kacc_comm::BufId>) {
    match op {
        SurvivableOp::Scatter { .. } => ((me == root).then_some(sb), Some(rb)),
        SurvivableOp::Gather { .. } => (Some(sb), (me == root).then_some(rb)),
        SurvivableOp::Bcast { .. } => (Some(sb), None),
        SurvivableOp::Allgather { .. } | SurvivableOp::Alltoall { .. } => (Some(sb), Some(rb)),
        SurvivableOp::Reduce { .. } => (Some(sb), (me == root).then_some(rb)),
    }
}

/// Completion time vs injected failures for every survivable
/// collective: the PR-8 shrink-and-re-execute cost curve.
pub fn fig_failures(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::broadwell();
    let p = if quick { 8 } else { 16 };
    let count = if quick { 4 << 10 } else { 32 << 10 };
    let root = 0;
    let failure_counts: Vec<usize> = vec![0, 1, 2];
    let mut c = Chart::new(
        "failures",
        format!(
            "Survivable collectives: completion time vs injected rank failures, {} ({p} processes, seed {SEED:#x})",
            arch.name
        ),
        "Ranks killed mid-collective",
        "Completion latency (us)",
    );
    for (label, op) in ops(count, root) {
        let ys: Vec<f64> = failure_counts
            .iter()
            .map(|&k| survivable_end_ns(&arch, p, op, kills(k, p)) as f64 / US)
            .collect();
        c.series.push(Series::new(label, &failure_counts, &ys));
    }
    c.notes.push(
        "each failure adds a detection stall (liveness timeout), two agreement \
         rounds, and a full re-execution over the survivors"
            .into(),
    );
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_chart_is_monotone_and_deterministic() {
        let a = fig_failures(true);
        let b = fig_failures(true);
        assert_eq!(a.len(), 1);
        for (sa, sb) in a[0].series.iter().zip(&b[0].series) {
            assert_eq!(sa.points, sb.points, "{}: not deterministic", sa.label);
            // Recovery is never free: every injected failure strictly
            // lengthens the run.
            for w in sa.points.windows(2) {
                assert!(
                    w[1].1 > w[0].1,
                    "{}: completion time not increasing with failures ({} -> {})",
                    sa.label,
                    w[0].1,
                    w[1].1
                );
            }
        }
    }
}
