//! Robustness artifact: completion time of the survivable collectives
//! as a function of the number of ranks silently killed mid-plan.
//!
//! Each point is one deterministic simulated run: the team starts the
//! collective under a seeded silent-kill fault plan (`ESRCH` on every
//! transport op of the victim from its kill point on), survivors detect
//! the deaths via adaptive liveness deadlines, agree on the dead set,
//! shrink, and re-execute (or resume from watermarks) over the survivor
//! group. The reported latency is the virtual time at which the last
//! rank finished — including detection stalls, the agreement rounds,
//! and the re-execution — so the chart is the paper-style "cost of a
//! failure" curve. The gen-2 sweep covers p ∈ {16, 64, 128} and
//! k ∈ {0..4} kills, and a companion chart splits the recovery into
//! its detect / agree / re-execute phases straight from
//! [`kacc_collectives::MembershipReport`]. Runs are dispatched on the
//! engine selected with `--engine` and are bitwise-identical across
//! engines and `--jobs` values.

use crate::measure::{engine, Engine};
use crate::render::{Chart, Series};
use kacc_collectives::{
    run_survivable, run_survivable_polled, AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype,
    GatherAlgo, RecoveryPolicy, ReduceAlgo, ReduceOp, ScatterAlgo, SurvivableOp,
};
use kacc_comm::{Comm, CommExt};
use kacc_fault::{FaultHook, FaultPlan};
use kacc_machine::{run_polled_team_faulty, run_team_faulty, PolledComm, SimComm};
use kacc_model::ArchProfile;

const US: f64 = 1000.0;
const SEED: u64 = 0xC0FFEE;

/// The six survivable entry points, with the same algorithm picks the
/// chaos suites pin.
fn ops(count: usize, root: usize) -> Vec<(&'static str, SurvivableOp)> {
    vec![
        (
            "Scatter (throttled k=2)",
            SurvivableOp::Scatter {
                algo: ScatterAlgo::ThrottledRead { k: 2 },
                count,
                root,
            },
        ),
        (
            "Gather (parallel write)",
            SurvivableOp::Gather {
                algo: GatherAlgo::ParallelWrite,
                count,
                root,
            },
        ),
        (
            "Bcast (2-nomial)",
            SurvivableOp::Bcast {
                algo: BcastAlgo::KNomial { radix: 2 },
                count,
                root,
            },
        ),
        (
            "Allgather (Bruck)",
            SurvivableOp::Allgather {
                algo: AllgatherAlgo::Bruck,
                count,
            },
        ),
        (
            "Alltoall (pairwise)",
            SurvivableOp::Alltoall {
                algo: AlltoallAlgo::Pairwise,
                count,
            },
        ),
        (
            "Reduce (2-nomial sum)",
            SurvivableOp::Reduce {
                algo: ReduceAlgo::KNomialTree { radix: 2 },
                count,
                dtype: Dtype::U64,
                op: ReduceOp::Sum,
                root,
            },
        ),
    ]
}

/// Ranks killed (with their per-rank op-stream kill points) for each
/// failure count 0..=4. The victim sets nest (`kills(k)` ⊂
/// `kills(k+1)`) so each added failure strictly adds recovery work,
/// and victims avoid the root so survivors can recover.
fn kills(failures: usize, p: usize) -> Vec<(usize, u64)> {
    let victims = [(p / 2, 2), (p - 1, 5), (p - 3, 3), (p / 4, 4)];
    victims[..failures.min(victims.len())].to_vec()
}

fn kill_hook(kills: &[(usize, u64)]) -> FaultHook {
    let mut plan = FaultPlan::new(SEED);
    for &(d, after) in kills {
        plan = plan.silent_kill(d, after);
    }
    plan.hook()
}

/// The node profile a group size belongs on: Broadwell up to p = 64,
/// a KNL-class many-core node for wider groups — oversubscribing 128
/// ranks onto a dual-socket node serializes the recovery sweeps far
/// past anything the analytic deadline model (one rank per hardware
/// place, like a real MPI pinning) is meant to cover.
fn arch_for_p(p: usize) -> ArchProfile {
    if p <= 64 {
        ArchProfile::broadwell()
    } else {
        ArchProfile::knl()
    }
}

/// One deterministic survivable run: completion time plus the
/// worst-rank recovery-phase breakdown.
struct FailurePoint {
    /// Virtual time at which the last rank finished (ns).
    end_ns: u64,
    /// Worst-rank virtual time in torn executions before detection.
    detect_ns: u64,
    /// Worst-rank virtual time in agreement collectives.
    agree_ns: u64,
    /// Worst-rank virtual time re-executing / resuming the data plan.
    reexec_ns: u64,
}

/// Run one survivable collective under a silent-kill plan on the
/// selected engine. Per-rank errors on killed ranks are expected and
/// count a zero breakdown; the end time covers every rank's exit.
fn survivable_point(
    arch: &ArchProfile,
    p: usize,
    op: SurvivableOp,
    dead: Vec<(usize, u64)>,
) -> FailurePoint {
    let root = op.root().unwrap_or(0);
    let count = op.count();
    let (run, reps): (_, Vec<(u64, u64, u64)>) = match engine() {
        Engine::Threads => run_team_faulty(arch, p, kill_hook(&dead), move |comm: &mut SimComm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&vec![me as u8; p * count]);
            let rb = comm.alloc(p * count);
            let (s, r) = bindings(op, me, root, sb, rb);
            match run_survivable(comm, &op, s, r, &RecoveryPolicy::survivable()) {
                Ok(o) => (
                    o.membership.detect_ns,
                    o.membership.agree_ns,
                    o.membership.reexec_ns,
                ),
                Err(_) => (0, 0, 0),
            }
        }),
        Engine::Polled => {
            run_polled_team_faulty(arch, p, kill_hook(&dead), move |rank| async move {
                let mut comm = PolledComm::new(rank);
                let sb = comm
                    .alloc_with(&vec![rank as u8; p * count])
                    .expect("alloc");
                let rb = comm.alloc(p * count);
                let (s, r) = bindings(op, rank, root, sb, rb);
                match run_survivable_polled(&mut comm, &op, s, r, &RecoveryPolicy::survivable())
                    .await
                {
                    Ok(o) => (
                        o.membership.detect_ns,
                        o.membership.agree_ns,
                        o.membership.reexec_ns,
                    ),
                    Err(_) => (0, 0, 0),
                }
            })
        }
    };
    FailurePoint {
        end_ns: run.end_ns,
        detect_ns: reps.iter().map(|t| t.0).max().unwrap_or(0),
        agree_ns: reps.iter().map(|t| t.1).max().unwrap_or(0),
        reexec_ns: reps.iter().map(|t| t.2).max().unwrap_or(0),
    }
}

/// Parent-sized buffer bindings per op shape (both buffers are always
/// allocated; this only picks which are passed).
fn bindings(
    op: SurvivableOp,
    me: usize,
    root: usize,
    sb: kacc_comm::BufId,
    rb: kacc_comm::BufId,
) -> (Option<kacc_comm::BufId>, Option<kacc_comm::BufId>) {
    match op {
        SurvivableOp::Scatter { .. } => ((me == root).then_some(sb), Some(rb)),
        SurvivableOp::Gather { .. } => (Some(sb), (me == root).then_some(rb)),
        SurvivableOp::Bcast { .. } => (Some(sb), None),
        SurvivableOp::Allgather { .. } | SurvivableOp::Alltoall { .. } => (Some(sb), Some(rb)),
        SurvivableOp::Reduce { .. } => (Some(sb), (me == root).then_some(rb)),
    }
}

/// Group sizes swept by the gen-2 failure study. Quick mode keeps the
/// single Broadwell reference point CI pins; full scale adds the wide
/// groups that exercise the multi-word membership masks (p = 128 needs
/// two mask words — the p ≤ 63 limit is gone).
fn group_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![16]
    } else {
        vec![16, 64, 128]
    }
}

/// Payload per rank: the dense paper size at the reference p, scaled
/// down for wide groups so parent-sized alltoall buffers (p × count
/// per rank) stay bounded.
fn count_for(p: usize, quick: bool) -> usize {
    if quick || p > 16 {
        4 << 10
    } else {
        32 << 10
    }
}

/// Completion time vs injected failures for every survivable
/// collective, one panel per group size, plus a recovery-phase
/// breakdown panel (detect / agree / re-execute, worst rank, from the
/// membership report) for the 2-nomial bcast.
pub fn fig_failures(quick: bool) -> Vec<Chart> {
    let root = 0;
    let failure_counts: Vec<usize> = vec![0, 1, 2, 3, 4];
    let mut charts = Vec::new();
    for p in group_sizes(quick) {
        let arch = arch_for_p(p);
        let count = count_for(p, quick);
        let mut c = Chart::new(
            format!("failures_p{p}"),
            format!(
                "Survivable collectives: completion time vs injected rank failures, {} ({p} processes, seed {SEED:#x})",
                arch.name
            ),
            "Ranks killed mid-collective",
            "Completion latency (us)",
        );
        let mut b = Chart::new(
            format!("failures_breakdown_p{p}"),
            format!(
                "Recovery-phase breakdown for Bcast (2-nomial) vs injected failures, {} ({p} processes)",
                arch.name
            ),
            "Ranks killed mid-collective",
            "Worst-rank phase time (us)",
        );
        for (label, op) in ops(count, root) {
            let pts: Vec<FailurePoint> = failure_counts
                .iter()
                .map(|&k| survivable_point(&arch, p, op, kills(k, p)))
                .collect();
            let ys: Vec<f64> = pts.iter().map(|pt| pt.end_ns as f64 / US).collect();
            c.series.push(Series::new(label, &failure_counts, &ys));
            if matches!(op, SurvivableOp::Bcast { .. }) {
                for (phase, f) in [
                    (
                        "detect",
                        (|pt: &FailurePoint| pt.detect_ns) as fn(&FailurePoint) -> u64,
                    ),
                    ("agree", |pt| pt.agree_ns),
                    ("re-execute", |pt| pt.reexec_ns),
                ] {
                    let ys: Vec<f64> = pts.iter().map(|pt| f(pt) as f64 / US).collect();
                    b.series.push(Series::new(phase, &failure_counts, &ys));
                }
            }
        }
        c.notes.push(
            "each failure adds an adaptive detection stall, three agreement \
             rounds, and a re-execution (or watermark resume) over the survivors"
                .into(),
        );
        b.notes.push(
            "worst-rank virtual time per recovery phase from MembershipReport \
             {detect_ns, agree_ns, reexec_ns}"
                .into(),
        );
        charts.push(c);
        charts.push(b);
    }
    charts
}

/// Per-failure virtual recovery cost at the CI reference point
/// (quick scale, p = 16): the worst over the six survivable
/// collectives of (one kill − clean) completion time. The PR-8
/// fixed-deadline recovery paid ~160 ms per failure here; the gen-2
/// adaptive deadlines are gated (hard, in `bench-regress`) at ≥4×
/// under that.
pub fn per_failure_cost_ns() -> u64 {
    let p = 16;
    let root = 0;
    let arch = arch_for_p(p);
    let count = count_for(p, true);
    ops(count, root)
        .into_iter()
        .map(|(_, op)| {
            let clean = survivable_point(&arch, p, op, vec![]).end_ns;
            let one = survivable_point(&arch, p, op, kills(1, p)).end_ns;
            one.saturating_sub(clean)
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_charts_are_monotone_and_deterministic() {
        let a = fig_failures(true);
        let b = fig_failures(true);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().any(|c| c.id.starts_with("failures_p")));
        assert!(a.iter().any(|c| c.id.starts_with("failures_breakdown_")));
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.id, cb.id);
            for (sa, sb) in ca.series.iter().zip(&cb.series) {
                assert_eq!(
                    sa.points, sb.points,
                    "{}/{}: not deterministic",
                    ca.id, sa.label
                );
            }
            // Recovery is never free: every injected failure strictly
            // lengthens the completion-time curves. (The phase
            // breakdown panel is not monotone by construction — a
            // watermark resume can shrink reexec_ns while detect_ns
            // grows.)
            if ca.id.starts_with("failures_p") {
                for sa in &ca.series {
                    for w in sa.points.windows(2) {
                        assert!(
                            w[1].1 > w[0].1,
                            "{}/{}: completion time not increasing with failures ({} -> {})",
                            ca.id,
                            sa.label,
                            w[0].1,
                            w[1].1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_failure_cost_is_deterministic_and_bounded() {
        let a = per_failure_cost_ns();
        assert_eq!(a, per_failure_cost_ns(), "cost probe not deterministic");
        assert!(a > 0, "a silent kill must cost something");
        // The same bound bench-regress enforces as a hard gate.
        assert!(
            a < 40_000_000,
            "per-failure recovery cost {a} ns breaches the 40 ms gate"
        );
    }
}
