//! Algorithm-comparison artifacts: Figs 7–11 and the Fig 12 model
//! validation.

use super::{par_ys, platforms, sweep, throttles};
use crate::measure::{
    allgather_ns, alltoall_ns, bcast_ns, gather_ns, library_ns, scatter_ns, Coll,
};
use crate::render::{Chart, Series};
use kacc_collectives::{AllgatherAlgo, AlltoallAlgo, BcastAlgo, GatherAlgo, ScatterAlgo};
use kacc_model::{predict, ArchProfile};
use kacc_mpi::Library;

const US: f64 = 1000.0;

fn sweep_for(arch: &ArchProfile, quick: bool) -> Vec<usize> {
    let mut sizes = sweep(quick);
    if arch.name == "Power8" && !quick {
        // The paper sweeps Power8 only to 2 MiB.
        sizes.retain(|&s| s <= 2 << 20);
        sizes.push(2 << 20);
        sizes.sort_unstable();
        sizes.dedup();
    }
    sizes
}

/// Fig 7: Scatter algorithm comparison on all three architectures.
pub fn fig07(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let sizes = sweep_for(&arch, quick);
            let mut c = Chart::new(
                format!("fig7-{}", arch.name.to_lowercase()),
                format!("Scatter algorithms, {} ({p} processes)", arch.name),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            for k in throttles(&arch, p) {
                let ys = par_ys(&sizes, |eta| {
                    scatter_ns(&arch, p, eta, ScatterAlgo::ThrottledRead { k }) / US
                });
                c.series
                    .push(Series::new(format!("Throttle = {k}"), &sizes, &ys));
            }
            let par = par_ys(&sizes, |eta| {
                scatter_ns(&arch, p, eta, ScatterAlgo::ParallelRead) / US
            });
            c.series.push(Series::new("Parallel Read", &sizes, &par));
            let seq = par_ys(&sizes, |eta| {
                scatter_ns(&arch, p, eta, ScatterAlgo::SequentialWrite) / US
            });
            c.series.push(Series::new("Sequential Write", &sizes, &seq));
            c
        })
        .collect()
}

/// Fig 8: Gather algorithm comparison (mirror of Fig 7).
pub fn fig08(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let sizes = sweep_for(&arch, quick);
            let mut c = Chart::new(
                format!("fig8-{}", arch.name.to_lowercase()),
                format!("Gather algorithms, {} ({p} processes)", arch.name),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            for k in throttles(&arch, p) {
                let ys = par_ys(&sizes, |eta| {
                    gather_ns(&arch, p, eta, GatherAlgo::ThrottledWrite { k }) / US
                });
                c.series
                    .push(Series::new(format!("Throttle = {k}"), &sizes, &ys));
            }
            let par = par_ys(&sizes, |eta| {
                gather_ns(&arch, p, eta, GatherAlgo::ParallelWrite) / US
            });
            c.series.push(Series::new("Parallel Writes", &sizes, &par));
            let seq = par_ys(&sizes, |eta| {
                gather_ns(&arch, p, eta, GatherAlgo::SequentialRead) / US
            });
            c.series.push(Series::new("Sequential Read", &sizes, &seq));
            c
        })
        .collect()
}

/// Fig 9: pairwise Alltoall implementations — two-copy shared memory,
/// point-to-point CMA (RTS/CTS), and the native CMA collective.
pub fn fig09(quick: bool) -> Vec<Chart> {
    let sizes = if quick {
        vec![4 << 10, 64 << 10]
    } else {
        crate::size_sweep_short()
    };
    platforms(quick)
        .into_iter()
        .filter(|(a, _)| a.name != "Power8") // the paper shows KNL + Broadwell
        .map(|(arch, p)| {
            let mut c = Chart::new(
                format!("fig9-{}", arch.name.to_lowercase()),
                format!(
                    "Pairwise Alltoall implementations, {} ({p} processes)",
                    arch.name
                ),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            let shmem = par_ys(&sizes, |eta| {
                library_ns(&arch, p, eta, Coll::Alltoall, Library::IntelMpi) / US
            });
            c.series.push(Series::new("SHMEM", &sizes, &shmem));
            let pt2pt = par_ys(&sizes, |eta| {
                library_ns(&arch, p, eta, Coll::Alltoall, Library::Mvapich2) / US
            });
            c.series.push(Series::new("CMA-pt2pt", &sizes, &pt2pt));
            let coll = par_ys(&sizes, |eta| {
                alltoall_ns(&arch, p, eta, AlltoallAlgo::Pairwise) / US
            });
            c.series.push(Series::new("CMA-coll", &sizes, &coll));
            c
        })
        .collect()
}

/// Fig 10: Allgather algorithm comparison.
pub fn fig10(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let sizes = sweep_for(&arch, quick);
            let mut c = Chart::new(
                format!("fig10-{}", arch.name.to_lowercase()),
                format!("Allgather algorithms, {} ({p} processes)", arch.name),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            let mut algos: Vec<(String, AllgatherAlgo)> = vec![
                ("Ring-Source-Read".into(), AllgatherAlgo::RingSourceRead),
                ("Ring-Source-Write".into(), AllgatherAlgo::RingSourceWrite),
                (
                    "Ring-Neighbor-1".into(),
                    AllgatherAlgo::RingNeighbor { j: 1 },
                ),
                ("Bruck's Algorithm".into(), AllgatherAlgo::Bruck),
            ];
            if p.is_power_of_two() {
                algos.push((
                    "Recursive Doubling".into(),
                    AllgatherAlgo::RecursiveDoubling,
                ));
            }
            if arch.sockets > 1 {
                // The paper's inter-socket stride contrast on Broadwell.
                let j = (1..p).find(|&j| j >= 5 && gcd(j, p) == 1).unwrap_or(1);
                algos.push((
                    format!("Ring-Neighbor-{j}"),
                    AllgatherAlgo::RingNeighbor { j },
                ));
            }
            for (label, algo) in algos {
                let ys = par_ys(&sizes, |eta| allgather_ns(&arch, p, eta, algo) / US);
                c.series.push(Series::new(label, &sizes, &ys));
            }
            c
        })
        .collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// Fig 11: Broadcast algorithm comparison.
pub fn fig11(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .map(|(arch, p)| {
            let sizes = sweep_for(&arch, quick);
            let mut c = Chart::new(
                format!("fig11-{}", arch.name.to_lowercase()),
                format!("Broadcast algorithms, {} ({p} processes)", arch.name),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            let dr = par_ys(&sizes, |eta| {
                bcast_ns(&arch, p, eta, BcastAlgo::DirectRead) / US
            });
            c.series
                .push(Series::new("Parallel Read (Direct)", &sizes, &dr));
            let dw = par_ys(&sizes, |eta| {
                bcast_ns(&arch, p, eta, BcastAlgo::DirectWrite) / US
            });
            c.series
                .push(Series::new("Sequential Write (Direct)", &sizes, &dw));
            for k in throttles(&arch, p).into_iter().take(2) {
                let radix = k + 1;
                let ys = par_ys(&sizes, |eta| {
                    bcast_ns(&arch, p, eta, BcastAlgo::KNomial { radix }) / US
                });
                c.series
                    .push(Series::new(format!("{radix}-nomial Read"), &sizes, &ys));
            }
            let sag = par_ys(&sizes, |eta| {
                bcast_ns(&arch, p, eta, BcastAlgo::ScatterAllgather) / US
            });
            c.series
                .push(Series::new("Scatter-Allgather", &sizes, &sag));
            c
        })
        .collect()
}

/// Fig 12: predicted vs simulated Bcast latency (model validation).
pub fn fig12(quick: bool) -> Vec<Chart> {
    platforms(quick)
        .into_iter()
        .filter(|(a, _)| a.name != "Power8") // the paper shows KNL + Broadwell
        .map(|(arch, p)| {
            let sizes = sweep_for(&arch, quick);
            let params = arch.nominal_model();
            let mut c = Chart::new(
                format!("fig12-{}", arch.name.to_lowercase()),
                format!(
                    "Predicted vs simulated MPI_Bcast, {} ({p} processes): 1=Direct Read 2=Direct Write 3=Scatter-Allgather",
                    arch.name
                ),
                "Message Size (Bytes)",
                "Latency (us)",
            );
            type ModelFn<'a> = Box<dyn Fn(usize) -> f64 + 'a>;
            let specs: [(&str, BcastAlgo, ModelFn<'_>); 3] = [
                (
                    "1",
                    BcastAlgo::DirectRead,
                    Box::new(|eta| predict::bcast_direct_read(&params, p, eta)),
                ),
                (
                    "2",
                    BcastAlgo::DirectWrite,
                    Box::new(|eta| predict::bcast_direct_write(&params, p, eta)),
                ),
                (
                    "3",
                    BcastAlgo::ScatterAllgather,
                    Box::new(|eta| predict::bcast_scatter_allgather(&params, p, eta)),
                ),
            ];
            for (name, algo, model) in specs {
                let actual: Vec<f64> =
                    sizes.iter().map(|&eta| bcast_ns(&arch, p, eta, algo) / US).collect();
                c.series.push(Series::new(format!("Actual {name}"), &sizes, &actual));
                let modeled: Vec<f64> = sizes.iter().map(|&eta| model(eta) / US).collect();
                c.series.push(Series::new(format!("Modeled {name}"), &sizes, &modeled));
            }
            c
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fig07_knl_shapes() {
        let charts = fig07(true);
        let knl = &charts[0];
        let big = *knl.xs().last().unwrap();
        let at = |label: &str| {
            knl.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .at(big)
                .unwrap()
        };
        // Large messages: a throttled variant beats parallel read.
        let best_throttle = knl
            .series
            .iter()
            .filter(|s| s.label.starts_with("Throttle"))
            .map(|s| s.at(big).unwrap())
            .fold(f64::MAX, f64::min);
        assert!(best_throttle < at("Parallel Read"));
        assert!(best_throttle < at("Sequential Write"));
    }

    #[test]
    fn fig09_native_collective_wins_medium_messages() {
        let charts = fig09(true);
        for c in &charts {
            let eta = 64 << 10;
            let shm = c.series[0].at(eta).unwrap();
            let pt = c.series[1].at(eta).unwrap();
            let coll = c.series[2].at(eta).unwrap();
            assert!(coll < pt, "{}: coll {coll} !< pt2pt {pt}", c.id);
            assert!(coll < shm, "{}: coll {coll} !< shmem {shm}", c.id);
        }
    }

    #[test]
    fn fig11_scatter_allgather_wins_large_bcast() {
        let charts = fig11(true);
        let knl = &charts[0];
        let big = *knl.xs().last().unwrap();
        let sag = knl.series.last().unwrap().at(big).unwrap();
        let dr = knl.series[0].at(big).unwrap();
        assert!(sag < dr, "SAG {sag} !< direct read {dr}");
    }

    #[test]
    fn fig12_model_tracks_simulation() {
        let charts = fig12(true);
        for c in &charts {
            for pair in c.series.chunks(2) {
                let (actual, modeled) = (&pair[0], &pair[1]);
                for (x, a) in &actual.points {
                    let m = modeled.at(*x).unwrap();
                    let rel = (a - m).abs() / a.max(1e-9);
                    // Small messages deviate most: the binomial token
                    // distribution staggers readers, so the effective
                    // concurrency is below the model's worst case (the
                    // paper's Fig 12 shows the same small-size gap).
                    assert!(
                        rel < 0.6,
                        "{}: {} at {x}: actual {a} vs modeled {m} ({rel:.2})",
                        c.id,
                        actual.label
                    );
                }
            }
        }
    }
}
