//! CI perf-regression gate: diff a fresh quick-mode run against the
//! committed baseline.
//!
//! ```text
//! bench-regress                          # check vs BENCH_PR10.json, both engines
//! bench-regress --engine threads        # check one engine only
//! bench-regress --baseline FILE         # alternate baseline
//! bench-regress --out verdict.json      # machine-readable verdict
//! bench-regress --wall-tol-pct 50       # loosen the wall-clock tolerance
//! bench-regress --write-baseline FILE   # regenerate the baseline
//! ```
//!
//! The reference run is deterministic by construction: `--jobs 1`, quick
//! scale, every figure in registry order, then the wake-storm probe, all
//! on one engine, with the metric registry reset first. Everything the
//! baseline stores as an integer — per-figure event counts, wake-storm
//! diagnostics, and the full `kacc-metrics` snapshot — must match
//! **exactly**; any drift is a hard failure (exit 1), because those
//! quantities are virtual-time/count facts about the simulation, not
//! measurements. Wall-clock quantities (`wall_s`, `events_per_sec`)
//! vary across machines, so they only warn when they drift past the
//! tolerance (default 30%).
//!
//! The per-failure recovery cost (virtual ns a single silent kill adds
//! to a survivable collective, worst case over the op set) is gated
//! twice: exactly against the baseline like every other virtual-time
//! fact, and against an absolute 40 ms cap — 4× under the ~160 ms the
//! gen-1 fixed-deadline agreement charged — so a regression in the
//! adaptive-deadline machinery fails CI even if someone refreshes the
//! baseline without noticing.

use kacc_bench::figs::registry;
use kacc_bench::measure::{self, Engine, WakeStorm};
use kacc_bench::minijson::Json;
use kacc_bench::par;
use kacc_metrics::Value;

/// One engine's deterministic quick-mode reference measurement.
struct Reference {
    wall_s: f64,
    events_per_sec: f64,
    total_events: u64,
    figures: Vec<(String, u64)>,
    storm: WakeStorm,
    /// Worst-case virtual ns one silent kill adds to a survivable
    /// collective (deterministic; hard-capped at [`RECOVERY_CAP_NS`]).
    per_failure_cost_ns: u64,
    /// Flattened registry snapshot: counters/gauges as `name`, histograms
    /// as `name#count` / `name#sum` / `name#max`.
    metrics: Vec<(String, u64)>,
}

/// Absolute ceiling on the per-failure recovery cost, independent of
/// the committed baseline: 40 ms virtual, 4× under the gen-1 cost.
const RECOVERY_CAP_NS: u64 = 40_000_000;

/// Run the quick reference workload on `engine` and collect every
/// deterministic quantity the baseline pins.
fn quick_reference(engine: Engine) -> Reference {
    kacc_metrics::reset();
    measure::set_engine(engine);
    par::set_jobs(1);
    let t0 = std::time::Instant::now();
    let mut figures = Vec::new();
    let mut total_events = 0u64;
    for (name, f) in registry() {
        let e0 = kacc_sim_core::total_events();
        let _ = f(true);
        let ev = kacc_sim_core::total_events() - e0;
        total_events += ev;
        figures.push((name.to_string(), ev));
    }
    let storm = measure::wake_storm_probe(&kacc_model::ArchProfile::knl(), 8, 32 << 10, 5, engine);
    total_events += storm.events;
    let per_failure_cost_ns = kacc_bench::figs::failures::per_failure_cost_ns();
    let wall_s = t0.elapsed().as_secs_f64();
    let mut metrics = Vec::new();
    for (name, v) in kacc_metrics::snapshot().metrics {
        match v {
            Value::Counter(n) | Value::Gauge(n) => metrics.push((name, n)),
            Value::Hist(h) => {
                metrics.push((format!("{name}#count"), h.count()));
                metrics.push((format!("{name}#sum"), h.sum()));
                metrics.push((format!("{name}#max"), h.max()));
            }
        }
    }
    Reference {
        wall_s,
        events_per_sec: total_events as f64 / wall_s.max(1e-9),
        total_events,
        figures,
        storm,
        per_failure_cost_ns,
        metrics,
    }
}

fn baseline_json(refs: &[(Engine, Reference)]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"kacc-bench-regress-v1\",\n");
    s.push_str(
        "  \"note\": \"Committed quick-mode regression baseline for bench-regress: per-figure event counts, wake-storm diagnostics, the per-failure recovery cost, and the full kacc-metrics snapshot are deterministic and compared exactly; the recovery cost is additionally hard-capped at 40 ms virtual regardless of the baseline; wall_s / events_per_sec are machine-dependent and only warn; metrics newly registered since the baseline warn as additions. Regenerate with: cargo run --release -p kacc-bench --bin bench-regress -- --write-baseline BENCH_PR10.json\",\n",
    );
    s.push_str("  \"quick\": true,\n  \"jobs\": 1,\n  \"engines\": {\n");
    for (i, (engine, r)) in refs.iter().enumerate() {
        s.push_str(&format!("    \"{}\": {{\n", engine.label()));
        s.push_str(&format!("      \"wall_s\": {:.3},\n", r.wall_s));
        s.push_str(&format!(
            "      \"events_per_sec\": {:.0},\n",
            r.events_per_sec
        ));
        s.push_str(&format!("      \"total_events\": {},\n", r.total_events));
        s.push_str("      \"figures\": [\n");
        for (j, (name, ev)) in r.figures.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"name\": \"{name}\", \"events\": {ev}}}{}\n",
                if j + 1 < r.figures.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        let w = &r.storm;
        s.push_str(&format!(
            "      \"wake_storm\": {{\"iterations\": {}, \"events\": {}, \"peak_queue_len\": {}, \"wake_fanout_max\": {}, \"wakes_raw\": {}, \"wakes_coalesced\": {}}},\n",
            w.iterations, w.events, w.peak_queue_len, w.wake_fanout_max, w.wakes_raw, w.wakes_coalesced
        ));
        s.push_str(&format!(
            "      \"recovery\": {{\"per_failure_cost_ns\": {}, \"cap_ns\": {RECOVERY_CAP_NS}}},\n",
            r.per_failure_cost_ns
        ));
        s.push_str("      \"metrics\": {\n");
        for (j, (name, v)) in r.metrics.iter().enumerate() {
            s.push_str(&format!(
                "        \"{name}\": {v}{}\n",
                if j + 1 < r.metrics.len() { "," } else { "" }
            ));
        }
        s.push_str("      }\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < refs.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Compare one engine's fresh reference against its baseline block.
/// Returns (hard failures, warnings).
fn check(base: &Json, fresh: &Reference, wall_tol_pct: f64) -> (Vec<String>, Vec<String>) {
    let mut hard = Vec::new();
    let mut warn = Vec::new();

    let mut int_field = |path: &[&str], got: u64| match base.path(path).and_then(Json::as_u64) {
        Some(want) if want == got => {}
        Some(want) => hard.push(format!("{}: baseline {want}, fresh {got}", path.join("."))),
        None => hard.push(format!("{}: missing from baseline", path.join("."))),
    };

    int_field(&["total_events"], fresh.total_events);
    int_field(&["wake_storm", "iterations"], fresh.storm.iterations);
    int_field(&["wake_storm", "events"], fresh.storm.events);
    int_field(
        &["wake_storm", "peak_queue_len"],
        fresh.storm.peak_queue_len,
    );
    int_field(
        &["wake_storm", "wake_fanout_max"],
        fresh.storm.wake_fanout_max,
    );
    int_field(&["wake_storm", "wakes_raw"], fresh.storm.wakes_raw);
    int_field(
        &["wake_storm", "wakes_coalesced"],
        fresh.storm.wakes_coalesced,
    );
    int_field(
        &["recovery", "per_failure_cost_ns"],
        fresh.per_failure_cost_ns,
    );
    // The absolute cap binds even when the baseline itself drifted: a
    // refreshed baseline must never quietly bless a recovery cost that
    // gives back the gen-2 adaptive-deadline win.
    if fresh.per_failure_cost_ns > RECOVERY_CAP_NS {
        hard.push(format!(
            "recovery.per_failure_cost_ns: {} exceeds the absolute {RECOVERY_CAP_NS} ns cap",
            fresh.per_failure_cost_ns
        ));
    }

    // Figures: exact event counts, and the artifact set itself must not
    // drift silently in either direction.
    let base_figs: Vec<(&str, u64)> = base
        .get("figures")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|f| {
                    Some((
                        f.get("name").and_then(Json::as_str)?,
                        f.get("events").and_then(Json::as_u64)?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    for (name, want) in &base_figs {
        match fresh.figures.iter().find(|(n, _)| n == name) {
            Some((_, got)) if got == want => {}
            Some((_, got)) => hard.push(format!(
                "figure {name}: baseline {want} events, fresh {got}"
            )),
            None => hard.push(format!("figure {name}: in baseline but not produced")),
        }
    }
    for (name, _) in &fresh.figures {
        if !base_figs.iter().any(|(n, _)| n == name) {
            hard.push(format!(
                "figure {name}: produced but absent from baseline (regenerate with --write-baseline)"
            ));
        }
    }

    // Metrics: the full flattened snapshot, exact, both directions.
    let base_metrics = base
        .get("metrics")
        .and_then(Json::as_obj)
        .unwrap_or_default();
    for (name, v) in base_metrics {
        match fresh.metrics.iter().find(|(n, _)| n == name) {
            Some((_, got)) if Some(*got) == v.as_u64() => {}
            Some((_, got)) => hard.push(format!(
                "metric {name}: baseline {}, fresh {got}",
                v.as_u64()
                    .map_or_else(|| "non-integer".into(), |n| n.to_string())
            )),
            None => hard.push(format!("metric {name}: in baseline but not registered")),
        }
    }
    // Newly-registered metrics are additions, not regressions: a PR
    // introducing instrumentation should not fail the gate on keys the
    // baseline predates. They warn until the baseline is refreshed;
    // drifted or vanished keys above stay hard.
    for (name, _) in &fresh.metrics {
        if !base_metrics.iter().any(|(n, _)| n == name) {
            warn.push(format!(
                "metric {name}: new since baseline (refresh with --write-baseline)"
            ));
        }
    }

    // Wall-clock: machine-dependent, warn-only past the tolerance.
    let mut wall_field = |key: &str, got: f64| {
        if let Some(want) = base.get(key).and_then(Json::as_f64) {
            if want > 0.0 {
                let drift = (got - want) / want * 100.0;
                if drift.abs() > wall_tol_pct {
                    warn.push(format!(
                        "{key}: baseline {want:.3}, fresh {got:.3} ({drift:+.0}%)"
                    ));
                }
            }
        }
    };
    wall_field("wall_s", fresh.wall_s);
    wall_field("events_per_sec", fresh.events_per_sec);

    (hard, warn)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn verdict_json(baseline: &str, results: &[(&str, Vec<String>, Vec<String>)]) -> String {
    let ok = results.iter().all(|(_, hard, _)| hard.is_empty());
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"baseline\": \"{}\",\n  \"ok\": {ok},\n  \"engines\": [\n",
        json_escape(baseline)
    ));
    for (i, (engine, hard, warn)) in results.iter().enumerate() {
        let list = |items: &[String]| {
            items
                .iter()
                .map(|m| format!("\"{}\"", json_escape(m)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        s.push_str(&format!(
            "    {{\"engine\": \"{engine}\", \"ok\": {}, \"hard_failures\": [{}], \"warnings\": [{}]}}{}\n",
            hard.is_empty(),
            list(hard),
            list(warn),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = String::from("BENCH_PR10.json");
    let mut engines = vec![Engine::Threads, Engine::Polled];
    let mut out: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut wall_tol_pct = 30.0;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = value("--baseline"),
            "--out" => out = Some(value("--out")),
            "--write-baseline" => write_baseline = Some(value("--write-baseline")),
            "--engine" => {
                let v = value("--engine");
                engines = match v.as_str() {
                    "both" => vec![Engine::Threads, Engine::Polled],
                    other => vec![Engine::parse(other).unwrap_or_else(|| {
                        eprintln!(
                            "unknown engine '{other}' (expected 'threads', 'polled', or 'both')"
                        );
                        std::process::exit(2);
                    })],
                };
            }
            "--wall-tol-pct" => {
                wall_tol_pct = value("--wall-tol-pct").parse().unwrap_or_else(|_| {
                    eprintln!("--wall-tol-pct needs a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench-regress [--baseline FILE] [--engine threads|polled|both] [--out FILE] [--wall-tol-pct P] [--write-baseline FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (see bench-regress --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &write_baseline {
        let refs: Vec<(Engine, Reference)> = engines
            .iter()
            .map(|&e| {
                eprintln!("[reference run: --engine {}, --jobs 1, quick]", e.label());
                (e, quick_reference(e))
            })
            .collect();
        std::fs::write(path, baseline_json(&refs)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("[baseline -> {path}]");
        return;
    }

    let text = std::fs::read_to_string(&baseline).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{baseline}: {e}");
        std::process::exit(2);
    });

    let mut results: Vec<(&str, Vec<String>, Vec<String>)> = Vec::new();
    for &engine in &engines {
        let label = engine.label();
        let Some(block) = doc.path(&["engines", label]) else {
            results.push((
                label,
                vec![format!("engines.{label}: missing from baseline")],
                Vec::new(),
            ));
            continue;
        };
        eprintln!("[reference run: --engine {label}, --jobs 1, quick]");
        let fresh = quick_reference(engine);
        let (hard, warn) = check(block, &fresh, wall_tol_pct);
        eprintln!(
            "[{label}: {} hard failure(s), {} warning(s)]",
            hard.len(),
            warn.len()
        );
        for m in &hard {
            eprintln!("  FAIL {m}");
        }
        for m in &warn {
            eprintln!("  warn {m}");
        }
        results.push((label, hard, warn));
    }

    let verdict = verdict_json(&baseline, &results);
    match &out {
        Some(path) => {
            std::fs::write(path, &verdict).expect("write verdict");
            eprintln!("[verdict -> {path}]");
        }
        None => print!("{verdict}"),
    }
    if results.iter().any(|(_, hard, _)| !hard.is_empty()) {
        std::process::exit(1);
    }
}
