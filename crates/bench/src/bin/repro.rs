//! Regenerate the paper's tables and figures from the simulator.
//!
//! ```text
//! repro all                  # every artifact, full scale (minutes)
//! repro fig7 fig8            # specific artifacts
//! repro --quick all          # reduced sweeps/team sizes (smoke run)
//! repro --csv out/ fig7      # also write CSV files
//! repro --jobs 8 all         # fan sweep points over 8 workers
//!                            # (default: available parallelism; output
//!                            # is bitwise-identical for every N)
//! repro --engine polled all  # thread-free DES engine (bitwise-identical
//!                            # artifacts; much faster on wake-tied
//!                            # figures; legacy library-persona bodies
//!                            # still run on the threads engine)
//! repro --bench-out b.json   # record events/sec + wall-clock metrics
//!                            # (incl. wake-storm diagnostics on both
//!                            # engines and p50/p95/p99 probe latencies)
//! repro --metrics-out m.json # dump the kacc-metrics registry snapshot
//!                            # (JSON + Prometheus-style m.json.prom);
//!                            # virtual-time/count metrics only, so the
//!                            # files are bitwise-identical for every
//!                            # --jobs value and both engines
//! repro --list               # list artifact names
//! repro --trace-out t.json   # Chrome trace of a contended scatter
//! repro --fault-plan plan.txt  # same scatter under a fault plan:
//!                            # recovery accounting + breakdown (combine
//!                            # with --trace-out for the faulty timeline)
//! ```

use kacc_bench::figs::registry;
use kacc_bench::measure::{self, Engine};
use kacc_bench::{par, size_label, Chart};
use kacc_fault::FaultPlan;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut engine = Engine::Threads;
    let mut wanted: Vec<String> = Vec::new();
    let mut list_only = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list_only = true,
            "--jobs" => {
                let v = it.next().and_then(|s| s.parse::<usize>().ok());
                jobs = Some(v.unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }));
            }
            "--engine" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--engine needs 'threads' or 'polled'");
                    std::process::exit(2);
                });
                engine = Engine::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown engine '{v}' (expected 'threads' or 'polled')");
                    std::process::exit(2);
                });
            }
            "--bench-out" => {
                bench_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--bench-out needs a file path");
                    std::process::exit(2);
                }));
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a file path");
                    std::process::exit(2);
                }));
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }));
            }
            "--fault-plan" => {
                fault_plan = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--fault-plan needs a plan file path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--engine threads|polled] [--jobs N] [--csv DIR] [--bench-out FILE] [--metrics-out FILE] [--trace-out FILE] [--fault-plan FILE] [--list] <artifact...|all>\n\
                     artifacts: {}",
                    registry()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }

    let reg = registry();
    if list_only {
        for (name, _) in &reg {
            println!("{name}");
        }
        return;
    }
    let p = if quick { 8 } else { 16 };
    let count = if quick { 32 << 10 } else { 256 << 10 };
    if let Some(plan_path) = &fault_plan {
        // The contended scatter again, but with the plan's faults injected
        // at the transport layer: prints rank outcomes, recovery
        // accounting, and the phase breakdown with `fault:*`/`retry:*`/
        // `fallback:*` spans attributed.
        let text = std::fs::read_to_string(plan_path).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan {plan_path}: {e}");
            std::process::exit(2);
        });
        let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("{plan_path}: {e}");
            std::process::exit(2);
        });
        let (report, json) = kacc_bench::tracedemo::fault_plan_report(plan, p, count);
        print!("{report}");
        if let Some(path) = &trace_out {
            std::fs::write(path, &json).expect("write trace file");
            eprintln!(
                "[trace: {p}-rank contended scatter under {plan_path}, {} per rank -> {path}]",
                size_label(count)
            );
        }
    } else if let Some(path) = &trace_out {
        // One contended one-to-all scatter, traced end to end: the
        // Perfetto-loadable timeline shows one track per rank plus the
        // root's page-lock-server queue depth.
        let json = kacc_bench::tracedemo::default_trace_json(p, count);
        std::fs::write(path, &json).expect("write trace file");
        eprintln!(
            "[trace: {p}-rank contended scatter, {} per rank -> {path}]",
            size_label(count)
        );
    }
    if wanted.is_empty() {
        if trace_out.is_some() || fault_plan.is_some() {
            return;
        }
        eprintln!("nothing to do; try `repro all` or `repro --list`");
        std::process::exit(2);
    }
    let run_all = wanted.iter().any(|w| w == "all");
    for w in &wanted {
        if w != "all" && !reg.iter().any(|(n, _)| n == w) {
            eprintln!("unknown artifact '{w}' (see repro --list)");
            std::process::exit(2);
        }
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    measure::set_engine(engine);
    let jobs = jobs.unwrap_or_else(par::default_jobs);
    par::set_jobs(jobs);
    let selected: Vec<(&str, kacc_bench::figs::ArtifactFn)> = reg
        .iter()
        .filter(|(name, _)| run_all || wanted.iter().any(|w| w == name))
        .map(|(name, f)| (*name, *f))
        .collect();

    // Artifacts fan across the worker pool; each records its own
    // wall-clock and simulated-event delta. Per-artifact event counts are
    // exact at --jobs 1; with more jobs the global counter interleaves
    // concurrent artifacts, so per-figure attribution is approximate
    // (totals stay exact). Results print afterwards in registry order, so
    // stdout and every CSV are bitwise-identical for every job count.
    let started = std::time::Instant::now();
    let ev_start = kacc_sim_core::total_events();
    let fast_start = kacc_sim_core::total_fast_handoffs();
    let computed: Vec<(&str, Vec<Chart>, f64, u64)> = par::pmap(selected, |(name, f)| {
        let t0 = std::time::Instant::now();
        let e0 = kacc_sim_core::total_events();
        let charts = f(quick);
        let dt = t0.elapsed().as_secs_f64();
        (name, charts, dt, kacc_sim_core::total_events() - e0)
    });
    let total_wall = started.elapsed().as_secs_f64();
    let total_events = kacc_sim_core::total_events() - ev_start;
    let total_fast = kacc_sim_core::total_fast_handoffs() - fast_start;

    for (name, charts, secs, events) in &computed {
        for chart in charts {
            print!("{}", render(chart));
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", chart.id);
                let mut file = std::fs::File::create(&path).expect("create csv");
                file.write_all(chart.to_csv(|x| xfmt(chart, x)).as_bytes())
                    .expect("write csv");
            }
        }
        let approx = if jobs > 1 { "~" } else { "" };
        eprintln!(
            "[{name}: {} chart(s) in {secs:.1}s, {approx}{events} events ({approx}{:.2} Mev/s)]",
            charts.len(),
            *events as f64 / secs.max(1e-9) / 1e6,
        );
        println!();
    }
    eprintln!(
        "[total: {total_wall:.1}s, {total_events} events ({:.2} Mev/s, {:.0}% fast-path), --engine {}, --jobs {jobs}{}]",
        total_events as f64 / total_wall.max(1e-9) / 1e6,
        total_fast as f64 / (total_events as f64).max(1.0) * 100.0,
        engine.label(),
        if quick { ", --quick" } else { "" }
    );

    if let Some(path) = &bench_out {
        // Wake-storm diagnostics at figure-10 scale, probed sequentially
        // on BOTH engines after the sweep so the storm numbers in the
        // summary are exact regardless of --jobs or --engine.
        let knl = kacc_model::ArchProfile::knl();
        let storms = [
            measure::wake_storm_probe(&knl, p, count, 5, Engine::Threads),
            measure::wake_storm_probe(&knl, p, count, 5, Engine::Polled),
        ];
        let json = bench_report_json(
            engine,
            jobs,
            quick,
            total_wall,
            total_events,
            total_fast,
            &computed
                .iter()
                .map(|(name, _, secs, events)| (*name, *secs, *events))
                .collect::<Vec<_>>(),
            p,
            count,
            &storms,
        );
        std::fs::write(path, json).expect("write bench report");
        eprintln!("[bench metrics -> {path}]");
    }

    if let Some(path) = &metrics_out {
        // Snapshot last, so everything the process simulated (figures,
        // probes) is folded in. The registry holds only virtual-time and
        // count metrics — no wall-clock — and every update commutes, so
        // these files are bitwise-identical for every --jobs value and
        // for both engines on fault-free runs.
        let snap = kacc_metrics::snapshot();
        std::fs::write(path, snap.to_json()).expect("write metrics snapshot");
        let prom = format!("{path}.prom");
        std::fs::write(&prom, snap.to_prometheus()).expect("write metrics exposition");
        eprintln!("[metrics -> {path} (+ {prom})]");
    }
}

/// Assemble the `--bench-out` JSON: per-figure wall-clock + events, run
/// totals, a dedicated sequential measurement of the one-to-all
/// contention microbench at p=64 (the PR-4 acceptance metric, now with
/// per-reader latency percentiles) so the events/sec trajectory is
/// comparable across machines and job counts, and the wake-storm
/// diagnostics probed on both engines.
#[allow(clippy::too_many_arguments)]
fn bench_report_json(
    engine: Engine,
    jobs: usize,
    quick: bool,
    total_wall: f64,
    total_events: u64,
    total_fast: u64,
    figures: &[(&str, f64, u64)],
    storm_p: usize,
    storm_eta: usize,
    storms: &[measure::WakeStorm],
) -> String {
    use kacc_numerics::stats;
    let knl = kacc_model::ArchProfile::knl();
    let one = || kacc_bench::measure::one_to_all_read_lats(&knl, 64, 64 << 10, false);
    one(); // warm the worker pool so the probe measures steady state
    let e0 = kacc_sim_core::total_events();
    let t0 = std::time::Instant::now();
    let iters = 5;
    let mut lats = Vec::new();
    for _ in 0..iters {
        lats = one();
    }
    let probe_wall = t0.elapsed().as_secs_f64();
    let probe_events = kacc_sim_core::total_events() - e0;
    let lat_mean = stats::mean(&lats).unwrap_or(0.0);
    let lat_p50 = stats::median(&lats).unwrap_or(0.0);
    let lat_p95 = stats::percentile(&lats, 95.0).unwrap_or(0.0);
    let lat_p99 = stats::percentile(&lats, 99.0).unwrap_or(0.0);

    let mut s = String::from("{\n");
    s.push_str(&format!("  \"engine\": \"{}\",\n", engine.label()));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"total_wall_s\": {total_wall:.3},\n"));
    s.push_str(&format!("  \"total_events\": {total_events},\n"));
    s.push_str(&format!("  \"total_fast_handoffs\": {total_fast},\n"));
    s.push_str(&format!(
        "  \"events_per_sec\": {:.0},\n",
        total_events as f64 / total_wall.max(1e-9)
    ));
    s.push_str(&format!(
        "  \"one_to_all_p64\": {{\"iters\": {iters}, \"events\": {probe_events}, \"wall_s\": {probe_wall:.4}, \"events_per_sec\": {:.0}, \"lat_ns\": {{\"mean\": {lat_mean:.1}, \"p50\": {lat_p50:.1}, \"p95\": {lat_p95:.1}, \"p99\": {lat_p99:.1}}}}},\n",
        probe_events as f64 / probe_wall.max(1e-9)
    ));
    s.push_str(&format!(
        "  \"wake_storm\": {{\"p\": {storm_p}, \"eta\": {storm_eta}, \"engines\": [\n"
    ));
    for (i, w) in storms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"iterations\": {}, \"events\": {}, \"events_per_barrier\": {:.1}, \"peak_queue_len\": {}, \"wake_fanout_max\": {}, \"wake_fanout_mean\": {:.3}, \"wakes_raw\": {}, \"wakes_coalesced\": {}}}{}\n",
            w.engine,
            w.iterations,
            w.events,
            w.events_per_barrier,
            w.peak_queue_len,
            w.wake_fanout_max,
            w.wake_fanout_mean,
            w.wakes_raw,
            w.wakes_coalesced,
            if i + 1 < storms.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]},\n");
    s.push_str("  \"figures\": [\n");
    for (i, (name, secs, events)) in figures.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_s\": {secs:.3}, \"events\": {events}, \"events_per_sec\": {:.0}}}{}\n",
            *events as f64 / secs.max(1e-9),
            if i + 1 < figures.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn xfmt(chart: &Chart, x: usize) -> String {
    if chart.xlabel.contains("Size") {
        size_label(x)
    } else {
        x.to_string()
    }
}

fn render(chart: &Chart) -> String {
    chart.to_text(|x| xfmt(chart, x))
}
