//! Regenerate the paper's tables and figures from the simulator.
//!
//! ```text
//! repro all                  # every artifact, full scale (minutes)
//! repro fig7 fig8            # specific artifacts
//! repro --quick all          # reduced sweeps/team sizes (smoke run)
//! repro --csv out/ fig7      # also write CSV files
//! repro --list               # list artifact names
//! repro --trace-out t.json   # Chrome trace of a contended scatter
//! repro --fault-plan plan.txt  # same scatter under a fault plan:
//!                            # recovery accounting + breakdown (combine
//!                            # with --trace-out for the faulty timeline)
//! ```

use kacc_bench::figs::registry;
use kacc_bench::{size_label, Chart};
use kacc_fault::FaultPlan;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut fault_plan: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut list_only = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list_only = true,
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }));
            }
            "--fault-plan" => {
                fault_plan = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--fault-plan needs a plan file path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--csv DIR] [--trace-out FILE] [--fault-plan FILE] [--list] <artifact...|all>\n\
                     artifacts: {}",
                    registry()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }

    let reg = registry();
    if list_only {
        for (name, _) in &reg {
            println!("{name}");
        }
        return;
    }
    let p = if quick { 8 } else { 16 };
    let count = if quick { 32 << 10 } else { 256 << 10 };
    if let Some(plan_path) = &fault_plan {
        // The contended scatter again, but with the plan's faults injected
        // at the transport layer: prints rank outcomes, recovery
        // accounting, and the phase breakdown with `fault:*`/`retry:*`/
        // `fallback:*` spans attributed.
        let text = std::fs::read_to_string(plan_path).unwrap_or_else(|e| {
            eprintln!("cannot read fault plan {plan_path}: {e}");
            std::process::exit(2);
        });
        let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
            eprintln!("{plan_path}: {e}");
            std::process::exit(2);
        });
        let (report, json) = kacc_bench::tracedemo::fault_plan_report(plan, p, count);
        print!("{report}");
        if let Some(path) = &trace_out {
            std::fs::write(path, &json).expect("write trace file");
            eprintln!(
                "[trace: {p}-rank contended scatter under {plan_path}, {} per rank -> {path}]",
                size_label(count)
            );
        }
    } else if let Some(path) = &trace_out {
        // One contended one-to-all scatter, traced end to end: the
        // Perfetto-loadable timeline shows one track per rank plus the
        // root's page-lock-server queue depth.
        let json = kacc_bench::tracedemo::default_trace_json(p, count);
        std::fs::write(path, &json).expect("write trace file");
        eprintln!(
            "[trace: {p}-rank contended scatter, {} per rank -> {path}]",
            size_label(count)
        );
    }
    if wanted.is_empty() {
        if trace_out.is_some() || fault_plan.is_some() {
            return;
        }
        eprintln!("nothing to do; try `repro all` or `repro --list`");
        std::process::exit(2);
    }
    let run_all = wanted.iter().any(|w| w == "all");
    for w in &wanted {
        if w != "all" && !reg.iter().any(|(n, _)| n == w) {
            eprintln!("unknown artifact '{w}' (see repro --list)");
            std::process::exit(2);
        }
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let started = std::time::Instant::now();
    for (name, f) in &reg {
        if !run_all && !wanted.iter().any(|w| w == name) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let charts = f(quick);
        for chart in &charts {
            print!("{}", render(chart));
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", chart.id);
                let mut file = std::fs::File::create(&path).expect("create csv");
                file.write_all(chart.to_csv(|x| xfmt(chart, x)).as_bytes())
                    .expect("write csv");
            }
        }
        eprintln!(
            "[{name}: {} chart(s) in {:.1}s]",
            charts.len(),
            t0.elapsed().as_secs_f64()
        );
        println!();
    }
    eprintln!(
        "[total: {:.1}s{}]",
        started.elapsed().as_secs_f64(),
        if quick { ", --quick" } else { "" }
    );
}

fn xfmt(chart: &Chart, x: usize) -> String {
    if chart.xlabel.contains("Size") {
        size_label(x)
    } else {
        x.to_string()
    }
}

fn render(chart: &Chart) -> String {
    chart.to_text(|x| xfmt(chart, x))
}
