//! Synthetic XSEDE-style job trace (the Fig 1 motivation data).
//!
//! The paper motivates intra-node optimization with three years of XSEDE
//! accounting data: jobs of 1–9 nodes dominate both submission counts
//! and total CPU hours. The real XDMoD dataset is not redistributable,
//! so this module generates a statistically similar trace: node counts
//! follow a heavy-tailed mixture (most jobs tiny, a thin tail of large
//! ones), runtimes follow a log-normal-ish distribution, and CPU hours
//! are nodes × cores × runtime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One accounting record.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Nodes allocated.
    pub nodes: usize,
    /// Wall-clock hours.
    pub hours: f64,
    /// Cores per node on the submitting cluster.
    pub cores_per_node: usize,
}

impl Job {
    /// CPU hours consumed.
    pub fn cpu_hours(&self) -> f64 {
        (self.nodes * self.cores_per_node) as f64 * self.hours
    }
}

/// Histogram buckets used by Fig 1's x-axis.
pub const BUCKETS: [(usize, usize, &str); 7] = [
    (1, 1, "1"),
    (2, 2, "2"),
    (3, 4, "3-4"),
    (5, 8, "5-8"),
    (9, 16, "9-16"),
    (17, 32, "17-32"),
    (33, usize::MAX, "33+"),
];

/// Generate `n` jobs with the given seed.
pub fn generate(n: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Node-count mixture: 62% single node, 20% 2 nodes, then a
            // geometric tail — tuned to the XDMoD shape the paper cites
            // (small jobs are "the lion's share").
            let roll: f64 = rng.random();
            let nodes = if roll < 0.62 {
                1
            } else if roll < 0.82 {
                2
            } else if roll < 0.90 {
                rng.random_range(3..=4)
            } else if roll < 0.955 {
                rng.random_range(5..=8)
            } else if roll < 0.985 {
                rng.random_range(9..=16)
            } else if roll < 0.997 {
                rng.random_range(17..=32)
            } else {
                rng.random_range(33..=512)
            };
            // Log-normal-ish runtime: exp of a normal-ish sum, capped at
            // a 48h queue limit.
            let z: f64 = (0..6).map(|_| rng.random::<f64>()).sum::<f64>() - 3.0;
            let hours = (1.5f64 * (0.9 * z).exp()).min(48.0);
            Job {
                nodes,
                hours,
                cores_per_node: 28,
            }
        })
        .collect()
}

/// Bucketized (job count, CPU hours) per Fig 1 bucket.
pub fn histogram(jobs: &[Job]) -> Vec<(String, usize, f64)> {
    BUCKETS
        .iter()
        .map(|&(lo, hi, label)| {
            let in_bucket = jobs.iter().filter(|j| j.nodes >= lo && j.nodes <= hi);
            let (count, hours) =
                in_bucket.fold((0usize, 0.0f64), |(c, h), j| (c + 1, h + j.cpu_hours()));
            (label.to_string(), count, hours)
        })
        .collect()
}

/// Fraction of jobs and of CPU hours attributable to jobs of ≤ 9 nodes
/// (the paper's headline observation).
pub fn small_job_share(jobs: &[Job]) -> (f64, f64) {
    let total_jobs = jobs.len() as f64;
    let total_hours: f64 = jobs.iter().map(Job::cpu_hours).sum();
    let small: Vec<&Job> = jobs.iter().filter(|j| j.nodes <= 9).collect();
    let small_hours: f64 = small.iter().map(|j| j.cpu_hours()).sum();
    (small.len() as f64 / total_jobs, small_hours / total_hours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1000, 42);
        let b = generate(1000, 42);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.nodes == y.nodes && x.hours == y.hours));
    }

    #[test]
    fn small_jobs_dominate_both_metrics() {
        let jobs = generate(200_000, 7);
        let (job_share, hour_share) = small_job_share(&jobs);
        assert!(job_share > 0.85, "job share {job_share}");
        assert!(hour_share > 0.5, "cpu-hour share {hour_share}");
    }

    #[test]
    fn histogram_partitions_all_jobs() {
        let jobs = generate(50_000, 3);
        let hist = histogram(&jobs);
        let total: usize = hist.iter().map(|(_, c, _)| c).sum();
        assert_eq!(total, jobs.len());
        assert_eq!(hist.len(), BUCKETS.len());
        // Monotone-ish decline over the first buckets.
        assert!(hist[0].1 > hist[1].1);
        assert!(hist[1].1 > hist[3].1);
    }

    #[test]
    fn runtimes_respect_queue_limit() {
        let jobs = generate(10_000, 9);
        assert!(jobs.iter().all(|j| j.hours > 0.0 && j.hours <= 48.0));
    }
}
