#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the simulator (plus the Fig 1 motivation data from a
//! synthetic workload trace).
//!
//! Each `figs::figNN` / `figs::tableN` function returns [`render::Chart`]
//! values; the `repro` binary prints them as aligned text tables and
//! optional CSV. The Criterion benches under `benches/` re-run the same
//! experiments through `cargo bench`, reporting *simulated* time via
//! `iter_custom`.
//!
//! See `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

pub mod figs;
pub mod measure;
pub mod minijson;
pub mod nullcomm;
pub mod par;
pub mod render;
pub mod tracedemo;
pub mod workload;

pub use render::Chart;

/// The standard message-size sweep used by most figures (1 KiB – 4 MiB,
/// matching the paper's x-axes).
pub fn size_sweep() -> Vec<usize> {
    vec![
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
    ]
}

/// A shorter sweep for the heavyweight experiments (alltoall moves
/// p²·η bytes).
pub fn size_sweep_short() -> Vec<usize> {
    vec![1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10]
}

/// Human size label ("64K", "1M").
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(1 << 10), "1K");
        assert_eq!(size_label(4 << 20), "4M");
        assert_eq!(size_label(1000), "1000");
        assert_eq!(size_label(256 << 10), "256K");
    }

    #[test]
    fn sweeps_are_sorted_and_nonempty() {
        let s = size_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(size_sweep_short().len() < s.len());
    }
}
