//! A minimal JSON reader for the bench baselines.
//!
//! The workspace is offline (no serde), and the only JSON this repo
//! consumes is its own machine-written output (`BENCH_PR*.json`,
//! `--bench-out`, `--metrics-out`), so a small recursive-descent parser
//! covering objects, arrays, strings, numbers, booleans, and null is
//! enough. It accepts any standard JSON document; it does not try to
//! recover from malformed input — errors carry the byte offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; exact for the u32-scale integers and
    /// 3-decimal floats the bench files contain).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document order (duplicate keys keep the last value
    /// on lookup, like serde's default).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a document. The whole input must be one JSON value plus
    /// trailing whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (last duplicate wins). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a path of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    /// Number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields in document order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs don't occur in our machine-written
                        // ASCII files; map lone surrogates to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte-wise; the
                // input is a &str so the bytes are valid UTF-8.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "engine": "threads",
  "jobs": 1,
  "quick": true,
  "total_wall_s": 63.444,
  "figures": [
    {"name": "fig10", "events": 7365190},
    {"name": "table6", "events": 10402344}
  ],
  "nested": {"a": {"b": [1, 2, 3]}},
  "flags": [true, false, null]
}"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(v.get("engine").and_then(Json::as_str), Some("threads"));
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("quick"), Some(&Json::Bool(true)));
        assert_eq!(v.get("total_wall_s").and_then(Json::as_f64), Some(63.444));
        let figs = v.get("figures").and_then(Json::as_arr).expect("figures");
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[1].get("events").and_then(Json::as_u64), Some(10402344));
        assert_eq!(
            v.path(&["nested", "a", "b"])
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_decode() {
        let v = Json::parse(r#""a\n\"b\"A""#).expect("parse");
        assert_eq!(v.as_str(), Some("a\n\"b\"A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = Json::parse("[-3, 2.5, 1e3]").expect("parse");
        let a = v.as_arr().expect("arr");
        assert_eq!(a[0].as_f64(), Some(-3.0));
        assert_eq!(a[0].as_u64(), None);
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
    }
}
