//! A single-rank, instant-cost transport for executor micro-benches.
//!
//! Every operation completes immediately and `time_ns` never advances,
//! so replaying a schedule on [`NullComm`] measures executor dispatch
//! and recording overhead, not data movement. Shared by the
//! `trace_overhead` and `recovery_overhead` criterion benches.

use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use std::collections::HashMap;

/// Single-rank in-memory transport with zero-cost operations.
pub struct NullComm {
    bufs: HashMap<u64, Vec<u8>>,
    next: u64,
}

impl NullComm {
    /// A fresh endpoint with no buffers.
    pub fn new() -> NullComm {
        NullComm {
            bufs: HashMap::new(),
            next: 0,
        }
    }

    fn buf(&self, b: BufId) -> Result<&Vec<u8>> {
        self.bufs.get(&b.0).ok_or(CommError::InvalidBuffer(b.0))
    }
}

impl Default for NullComm {
    fn default() -> Self {
        NullComm::new()
    }
}

impl Comm for NullComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn topology(&self) -> Topology {
        Topology {
            sockets: 1,
            cores_per_socket: 1,
            threads_per_core: 1,
            page_size: 4096,
        }
    }

    fn alloc(&mut self, len: usize) -> BufId {
        let id = self.next;
        self.next += 1;
        self.bufs.insert(id, vec![0u8; len]);
        BufId(id)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.bufs
            .remove(&buf.0)
            .map(|_| ())
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        Ok(self.buf(buf)?.len())
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.buf(buf)?;
        self.bufs.get_mut(&buf.0).expect("buffer checked above")[off..off + data.len()]
            .copy_from_slice(data);
        Ok(())
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        out.copy_from_slice(&self.buf(buf)?[off..off + out.len()]);
        Ok(())
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        let chunk = self.buf(src)?[src_off..src_off + len].to_vec();
        self.write_local(dst, dst_off, &chunk)
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        self.buf(buf)?;
        Ok(RemoteToken {
            rank: 0,
            token: buf.0,
        })
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.copy_local(BufId(token.token), remote_off, dst, dst_off, len)
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.copy_local(src, src_off, BufId(token.token), remote_off, len)
    }

    fn ctrl_send(&mut self, _to: usize, _tag: Tag, _data: &[u8]) -> Result<()> {
        unimplemented!("single-rank demo schedule has no control traffic")
    }

    fn ctrl_recv(&mut self, _from: usize, _tag: Tag) -> Result<Vec<u8>> {
        unimplemented!("single-rank demo schedule has no control traffic")
    }

    fn shm_send_data(
        &mut self,
        _to: usize,
        _tag: Tag,
        _src: BufId,
        _off: usize,
        _len: usize,
    ) -> Result<()> {
        unimplemented!("single-rank demo schedule has no shm traffic")
    }

    fn shm_recv_data(
        &mut self,
        _from: usize,
        _tag: Tag,
        _dst: BufId,
        _off: usize,
        _len: usize,
    ) -> Result<()> {
        unimplemented!("single-rank demo schedule has no shm traffic")
    }

    fn time_ns(&self) -> u64 {
        0
    }

    fn sleep_ns(&mut self, _ns: u64) {
        // Instant-cost transport: backoff is free, like everything else.
    }
}
