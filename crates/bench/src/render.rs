//! Chart/table data structures and text/CSV rendering.

use std::fmt::Write as _;

/// One line/series of an experiment: a label plus `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, value)` points; x is a size in bytes, a reader count, etc.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Build from parallel slices.
    pub fn new(label: impl Into<String>, xs: &[usize], ys: &[f64]) -> Series {
        assert_eq!(xs.len(), ys.len());
        Series {
            label: label.into(),
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
        }
    }

    /// Value at a given x, if present.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }
}

/// One regenerated table/figure panel.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Identifier, e.g. "fig7a".
    pub id: String,
    /// Paper-style caption.
    pub title: String,
    /// X-axis meaning ("Message Size (Bytes)", "Concurrent Readers").
    pub xlabel: String,
    /// Y-axis meaning ("Latency (us)", "Relative Throughput").
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form observations recorded alongside the data.
    pub notes: Vec<String>,
}

impl Chart {
    /// New empty chart.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Chart {
        Chart {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// All x values appearing in any series, sorted and deduplicated.
    pub fn xs(&self) -> Vec<usize> {
        let mut xs: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// Render as an aligned text table (x rows, series columns).
    pub fn to_text(&self, xfmt: impl Fn(usize) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   [{} vs {}]", self.ylabel, self.xlabel);
        let xs = self.xs();
        let headers: Vec<String> = self.series.iter().map(|s| s.label.clone()).collect();
        let wide = headers.iter().map(|h| h.len().max(12)).collect::<Vec<_>>();
        let _ = write!(out, "{:>10}", self.xlabel_short());
        for (h, w) in headers.iter().zip(&wide) {
            let _ = write!(out, " {h:>w$}", w = w);
        }
        let _ = writeln!(out);
        for x in xs {
            let _ = write!(out, "{:>10}", xfmt(x));
            for (s, w) in self.series.iter().zip(&wide) {
                match s.at(x) {
                    Some(y) => {
                        let _ = write!(out, " {:>w$}", format_value(y), w = w);
                    }
                    None => {
                        let _ = write!(out, " {:>w$}", "-", w = w);
                    }
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "   note: {n}");
        }
        out
    }

    /// Render as CSV (header row, then one row per x).
    pub fn to_csv(&self, xfmt: impl Fn(usize) -> String) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{}", xfmt(x));
            for s in &self.series {
                match s.at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y}");
                    }
                    None => {
                        let _ = write!(out, ",");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    fn xlabel_short(&self) -> String {
        self.xlabel.split(' ').next().unwrap_or("x").to_string()
    }
}

fn format_value(y: f64) -> String {
    if y == 0.0 {
        "0".into()
    } else if y.abs() >= 1000.0 {
        format!("{y:.0}")
    } else if y.abs() >= 10.0 {
        format!("{y:.1}")
    } else {
        format!("{y:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        let mut c = Chart::new("figX", "Test", "Message Size (Bytes)", "Latency (us)");
        c.series
            .push(Series::new("alpha", &[1024, 2048], &[1.5, 3.0]));
        c.series
            .push(Series::new("beta", &[1024, 4096], &[2.0, 8.0]));
        c.notes.push("beta misses 2048".into());
        c
    }

    #[test]
    fn xs_are_union_of_series() {
        assert_eq!(chart().xs(), vec![1024, 2048, 4096]);
    }

    #[test]
    fn text_render_contains_all_cells() {
        let txt = chart().to_text(|x| x.to_string());
        assert!(txt.contains("figX"));
        assert!(txt.contains("alpha"));
        assert!(txt.contains("1.500"));
        assert!(txt.contains("note: beta"));
        // Missing point renders as '-'.
        assert!(txt.lines().any(|l| l.contains("2048") && l.contains('-')));
    }

    #[test]
    fn csv_render_is_parseable() {
        let csv = chart().to_csv(|x| x.to_string());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "Message Size (Bytes),alpha,beta");
        assert_eq!(lines[1], "1024,1.5,2");
        assert_eq!(lines[2], "2048,3,");
    }

    #[test]
    fn value_formatting_scales() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(12345.6), "12346");
        assert_eq!(format_value(42.25), "42.2");
        assert_eq!(format_value(1.23456), "1.235");
    }
}
