//! Deterministic parallel map for independent sweep points.
//!
//! Every repro artifact is a pure function of its (arch, collective, p,
//! msize) inputs — the simulator is deterministic and shares no mutable
//! state across points — so points can execute on any worker in any
//! order as long as results are collected by input index. [`pmap`] does
//! exactly that: output is bitwise-identical for every job count,
//! including `--jobs 1` (see DESIGN.md §11.3 for the argument).
//!
//! The job count is a process-wide knob ([`set_jobs`], wired to
//! `repro --jobs N`) rather than a parameter, so deeply nested sweep
//! code doesn't thread it through a dozen signatures. Nested [`pmap`]
//! calls run inline on the caller's thread — the outer call owns the
//! worker budget; nesting would oversubscribe the machine with
//! `jobs²` simulated teams.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static JOBS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    static IN_PMAP: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide worker count for subsequent [`pmap`] calls
/// (clamped to ≥ 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// Current worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// The host's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`jobs`] worker threads, returning
/// results in input order.
///
/// Workers pull `(index, item)` pairs from a shared queue and write
/// results into their input slot, so scheduling affects only wall-clock,
/// never output. With one job (or when called from inside another
/// `pmap`) this degenerates to a plain sequential map on the calling
/// thread. A panic in `f` propagates to the caller.
pub fn pmap<T, R>(items: Vec<T>, f: impl Fn(T) -> R + Send + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let n = jobs().min(items.len());
    if n <= 1 || IN_PMAP.with(|c| c.get()) {
        return items.into_iter().map(f).collect();
    }
    let work: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let len = work
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..len).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {
                IN_PMAP.with(|c| c.set(true));
                loop {
                    let next = work
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .pop_front();
                    let Some((i, item)) = next else { break };
                    let r = f(item);
                    results
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmap_preserves_order_for_every_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for n in [1, 2, 8] {
            set_jobs(n);
            assert_eq!(pmap(items.clone(), |x| x * x), expect, "jobs={n}");
        }
        set_jobs(1);
    }

    #[test]
    fn nested_pmap_runs_inline() {
        set_jobs(4);
        let out = pmap(vec![0u32, 1, 2], |i| {
            // Inner call must not deadlock or oversubscribe: it runs
            // sequentially on this worker.
            pmap(vec![10u32, 20], move |j| i * 100 + j)
        });
        assert_eq!(out, vec![vec![10, 20], vec![110, 120], vec![210, 220]]);
        set_jobs(1);
    }

    #[test]
    fn empty_and_single() {
        set_jobs(8);
        assert_eq!(pmap(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pmap(vec![7u32], |x| x + 1), vec![8]);
        set_jobs(1);
    }
}
