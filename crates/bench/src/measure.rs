//! Simulated-latency measurement helpers shared by every figure.

use kacc_collectives::{
    allgather, alltoall, bcast, gather, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    GatherAlgo, ScatterAlgo, Tuner,
};
use kacc_comm::{smcoll, Comm, CommExt, RemoteToken, Tag};
use kacc_machine::{run_team_phantom, RankStats, SimComm};
use kacc_model::ArchProfile;
use kacc_mpi::baseline::{self, Library};

/// Run `f` on a simulated team and return the collective latency in
/// nanoseconds: ranks synchronize, run `f`, and the slowest rank's
/// elapsed virtual time is reported (the standard `MPI_Barrier` +
/// max-time measurement loop of collective benchmarks).
pub fn timed_team<F>(arch: &ArchProfile, p: usize, f: F) -> f64
where
    F: Fn(&mut SimComm) + Send + Sync + 'static,
{
    let (_, durs) = run_team_phantom(arch, p, move |comm| {
        smcoll::sm_barrier(comm).expect("barrier");
        let t0 = comm.time_ns();
        f(comm);
        comm.time_ns() - t0
    });
    durs.into_iter().max().expect("nonempty team") as f64
}

/// Scatter latency (root 0), ns.
pub fn scatter_ns(arch: &ArchProfile, p: usize, eta: usize, algo: ScatterAlgo) -> f64 {
    timed_team(arch, p, move |comm| {
        let me = comm.rank();
        let sb = (me == 0).then(|| comm.alloc(p * eta));
        let rb = comm.alloc(eta);
        scatter(comm, algo, sb, Some(rb), eta, 0).expect("scatter");
    })
}

/// Gather latency (root 0), ns.
pub fn gather_ns(arch: &ArchProfile, p: usize, eta: usize, algo: GatherAlgo) -> f64 {
    timed_team(arch, p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc(eta);
        let rb = (me == 0).then(|| comm.alloc(p * eta));
        gather(comm, algo, Some(sb), rb, eta, 0).expect("gather");
    })
}

/// Allgather latency, ns.
pub fn allgather_ns(arch: &ArchProfile, p: usize, eta: usize, algo: AllgatherAlgo) -> f64 {
    timed_team(arch, p, move |comm| {
        let sb = comm.alloc(eta);
        let rb = comm.alloc(p * eta);
        allgather(comm, algo, Some(sb), rb, eta).expect("allgather");
    })
}

/// Alltoall latency, ns.
pub fn alltoall_ns(arch: &ArchProfile, p: usize, eta: usize, algo: AlltoallAlgo) -> f64 {
    timed_team(arch, p, move |comm| {
        let sb = comm.alloc(p * eta);
        let rb = comm.alloc(p * eta);
        alltoall(comm, algo, Some(sb), rb, eta).expect("alltoall");
    })
}

/// Bcast latency (root 0), ns.
pub fn bcast_ns(arch: &ArchProfile, p: usize, eta: usize, algo: BcastAlgo) -> f64 {
    timed_team(arch, p, move |comm| {
        let buf = comm.alloc(eta);
        bcast(comm, algo, buf, eta, 0).expect("bcast");
    })
}

/// Which collective a library persona runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coll {
    /// MPI_Bcast.
    Bcast,
    /// MPI_Scatter.
    Scatter,
    /// MPI_Gather.
    Gather,
    /// MPI_Allgather.
    Allgather,
    /// MPI_Alltoall.
    Alltoall,
}

impl Coll {
    /// All five evaluated collectives, in Table VI order.
    pub fn all() -> [Coll; 5] {
        [
            Coll::Bcast,
            Coll::Scatter,
            Coll::Gather,
            Coll::Allgather,
            Coll::Alltoall,
        ]
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Coll::Bcast => "Bcast",
            Coll::Scatter => "Scatter",
            Coll::Gather => "Gather",
            Coll::Allgather => "Allgather",
            Coll::Alltoall => "Alltoall",
        }
    }
}

/// Latency of `coll` under a library persona, ns.
pub fn library_ns(arch: &ArchProfile, p: usize, eta: usize, coll: Coll, lib: Library) -> f64 {
    let tuner_arch = arch.clone();
    timed_team(arch, p, move |comm| {
        let tuner = Tuner::new(&tuner_arch);
        let me = comm.rank();
        match coll {
            Coll::Bcast => {
                let buf = comm.alloc(eta);
                baseline::bcast(comm, lib, &tuner, buf, eta, 0).expect("bcast");
            }
            Coll::Scatter => {
                let sb = (me == 0).then(|| comm.alloc(p * eta));
                let rb = comm.alloc(eta);
                baseline::scatter(comm, lib, &tuner, sb, Some(rb), eta, 0).expect("scatter");
            }
            Coll::Gather => {
                let sb = comm.alloc(eta);
                let rb = (me == 0).then(|| comm.alloc(p * eta));
                baseline::gather(comm, lib, &tuner, Some(sb), rb, eta, 0).expect("gather");
            }
            Coll::Allgather => {
                let sb = comm.alloc(eta);
                let rb = comm.alloc(p * eta);
                baseline::allgather(comm, lib, &tuner, Some(sb), rb, eta).expect("allgather");
            }
            Coll::Alltoall => {
                let sb = comm.alloc(p * eta);
                let rb = comm.alloc(p * eta);
                baseline::alltoall(comm, lib, &tuner, Some(sb), rb, eta).expect("alltoall");
            }
        }
    })
}

/// Per-reader latency of the One-to-all access pattern: `readers` ranks
/// concurrently read `eta` bytes from rank 0 (same buffer region or
/// per-reader regions), ns (mean over readers). The Fig 2(b)/(c) and
/// Fig 3 microbenchmark.
pub fn one_to_all_read_ns(
    arch: &ArchProfile,
    readers: usize,
    eta: usize,
    same_region: bool,
) -> f64 {
    let (_, durs) = run_team_phantom(arch, readers + 1, move |comm| {
        if comm.rank() == 0 {
            let len = if same_region { eta } else { eta * readers };
            let buf = comm.alloc(len);
            let tok = comm.expose(buf).expect("expose");
            for r in 1..=readers {
                comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                    .expect("send");
            }
            for r in 1..=readers {
                comm.wait_notify(r, Tag::user(2)).expect("done");
            }
            0u64
        } else {
            let raw = comm.ctrl_recv(0, Tag::user(1)).expect("token");
            let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
            let dst = comm.alloc(eta);
            let off = if same_region {
                0
            } else {
                (comm.rank() - 1) * eta
            };
            let t0 = comm.time_ns();
            comm.cma_read(tok, off, dst, 0, eta).expect("read");
            let d = comm.time_ns() - t0;
            comm.notify(0, Tag::user(2)).expect("notify");
            d
        }
    });
    let sum: u64 = durs.iter().skip(1).sum();
    sum as f64 / readers as f64
}

/// Per-reader latency of the All-to-all access pattern: `pairs`
/// disjoint (reader, source) pairs, ns (mean). Fig 2(a).
pub fn pairs_read_ns(arch: &ArchProfile, pairs: usize, eta: usize) -> f64 {
    let (_, durs) = run_team_phantom(arch, 2 * pairs, move |comm| {
        let me = comm.rank();
        if me % 2 == 0 {
            let buf = comm.alloc(eta);
            let tok = comm.expose(buf).expect("expose");
            comm.ctrl_send(me + 1, Tag::user(1), &tok.to_bytes())
                .expect("send");
            comm.wait_notify(me + 1, Tag::user(2)).expect("done");
            0u64
        } else {
            let raw = comm.ctrl_recv(me - 1, Tag::user(1)).expect("token");
            let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
            let dst = comm.alloc(eta);
            let t0 = comm.time_ns();
            comm.cma_read(tok, 0, dst, 0, eta).expect("read");
            let d = comm.time_ns() - t0;
            comm.notify(me - 1, Tag::user(2)).expect("notify");
            d
        }
    });
    let sum: u64 = durs.iter().skip(1).step_by(2).sum();
    sum as f64 / pairs as f64
}

/// Aggregate step breakdown of `readers` concurrent reads of `pages`
/// pages each from rank 0 (per-reader mean), the Fig 4 experiment.
pub fn breakdown(arch: &ArchProfile, readers: usize, pages: usize) -> RankStats {
    let eta = pages * arch.page_size;
    let (run, _) = run_team_phantom(arch, readers + 1, move |comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(eta * readers);
            let tok = comm.expose(buf).expect("expose");
            for r in 1..=readers {
                comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                    .expect("send");
            }
            for r in 1..=readers {
                comm.wait_notify(r, Tag::user(2)).expect("done");
            }
        } else {
            let raw = comm.ctrl_recv(0, Tag::user(1)).expect("token");
            let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
            let dst = comm.alloc(eta);
            comm.cma_read(tok, (comm.rank() - 1) * eta, dst, 0, eta)
                .expect("read");
            comm.notify(0, Tag::user(2)).expect("notify");
        }
    });
    let mut total = RankStats::default();
    for s in run.stats.iter().skip(1) {
        total.merge(s);
    }
    RankStats {
        syscall_ns: total.syscall_ns / readers as f64,
        check_ns: total.check_ns / readers as f64,
        lock_ns: total.lock_ns / readers as f64,
        pin_ns: total.pin_ns / readers as f64,
        copy_ns: total.copy_ns / readers as f64,
        cma_ops: total.cma_ops / readers as u64,
        bytes_read: total.bytes_read / readers as u64,
        bytes_written: total.bytes_written / readers as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_team_reports_positive_latency() {
        let arch = ArchProfile::broadwell();
        let t = scatter_ns(&arch, 8, 64 << 10, ScatterAlgo::SequentialWrite);
        assert!(t > 0.0);
    }

    #[test]
    fn one_to_all_contention_visible() {
        let arch = ArchProfile::knl();
        let t1 = one_to_all_read_ns(&arch, 1, 256 << 10, false);
        let t16 = one_to_all_read_ns(&arch, 16, 256 << 10, false);
        assert!(t16 > 3.0 * t1, "t16 {t16} vs t1 {t1}");
        // Same-region reads contend at least as much.
        let t16s = one_to_all_read_ns(&arch, 16, 256 << 10, true);
        assert!(t16s > 3.0 * t1);
    }

    #[test]
    fn pairs_scale_flat() {
        let arch = ArchProfile::knl();
        let t1 = pairs_read_ns(&arch, 1, 64 << 10);
        let t8 = pairs_read_ns(&arch, 8, 64 << 10);
        assert!(t8 < 2.5 * t1, "t8 {t8} vs t1 {t1}");
    }

    #[test]
    fn breakdown_is_lock_dominated_under_contention() {
        // Fig 4's message: with concurrency, lock time dominates.
        let arch = ArchProfile::broadwell();
        let solo = breakdown(&arch, 1, 128);
        let packed = breakdown(&arch, 27, 128);
        assert!(packed.lock_ns > solo.lock_ns * 5.0);
        assert!(
            packed.lock_ns > packed.copy_ns,
            "lock {} should dominate copy {}",
            packed.lock_ns,
            packed.copy_ns
        );
    }

    #[test]
    fn library_dispatch_runs_all_collectives() {
        let arch = ArchProfile::broadwell();
        for coll in Coll::all() {
            let t = library_ns(&arch, 6, 32 << 10, coll, Library::Kacc);
            assert!(t > 0.0, "{coll:?}");
        }
        let t = library_ns(&arch, 6, 32 << 10, Coll::Gather, Library::IntelMpi);
        assert!(t > 0.0);
    }
}
