//! Simulated-latency measurement helpers shared by every figure.
//!
//! Each helper dispatches on the process-wide [`Engine`] selector: the
//! thread-per-rank engine (`run_team`/`SimComm`) or the thread-free
//! polled engine (`run_polled_team`/`PolledComm`). Both produce bitwise
//! identical virtual latencies (pinned by the engine-equivalence suite),
//! so the selector only changes wall-clock cost. Helpers whose bodies
//! are legacy blocking closures generic over `Comm` — the library
//! personas ([`library_ns`]), [`pairs_read_ns`], [`breakdown`] — always
//! run on the threads engine regardless of the selector.

use kacc_collectives::{
    allgather, allgather_polled, alltoall, alltoall_polled, bcast, bcast_polled, gather,
    gatherv_polled, scatter, scatter_polled, AllgatherAlgo, AlltoallAlgo, BcastAlgo, GatherAlgo,
    ScatterAlgo, Tuner,
};
use kacc_comm::{smcoll, Comm, CommExt, RemoteToken, Tag};
use kacc_machine::polled::sm_barrier_polled;
use kacc_machine::{run_polled_team_phantom, run_team_phantom, PolledComm, RankStats, SimComm};
use kacc_model::ArchProfile;
use kacc_mpi::baseline::{self, Library};
use kacc_numerics::stats;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which DES engine executes the simulated teams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One OS thread per simulated rank, condvar hand-offs (the
    /// original engine; required for legacy blocking closure bodies).
    Threads,
    /// Single-threaded kernel polling resumable rank tasks — no
    /// hand-off cost on wake-tied (0% fast-path) workloads.
    Polled,
}

impl Engine {
    /// Parse a `--engine` argument.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "threads" => Some(Engine::Threads),
            "polled" => Some(Engine::Polled),
            _ => None,
        }
    }

    /// Display name (matches the `--engine` argument spelling).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Threads => "threads",
            Engine::Polled => "polled",
        }
    }
}

static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Select the engine for all subsequent measurements (process-wide).
pub fn set_engine(e: Engine) {
    ENGINE.store(e as u8, Ordering::Relaxed);
}

/// The currently selected engine.
pub fn engine() -> Engine {
    match ENGINE.load(Ordering::Relaxed) {
        0 => Engine::Threads,
        _ => Engine::Polled,
    }
}

/// Run `f` on a simulated team and return the collective latency in
/// nanoseconds: ranks synchronize, run `f`, and the slowest rank's
/// elapsed virtual time is reported (the standard `MPI_Barrier` +
/// max-time measurement loop of collective benchmarks).
pub fn timed_team<F>(arch: &ArchProfile, p: usize, f: F) -> f64
where
    F: Fn(&mut SimComm) + Send + Sync + 'static,
{
    let (_, durs) = run_team_phantom(arch, p, move |comm| {
        smcoll::sm_barrier(comm).expect("barrier");
        let t0 = comm.time_ns();
        f(comm);
        comm.time_ns() - t0
    });
    durs.into_iter().max().expect("nonempty team") as f64
}

/// The polled twin of [`timed_team`]: ranks synchronize over the polled
/// dissemination barrier, then `f` runs on a fresh endpoint and returns
/// its own elapsed virtual ns; the slowest rank's time is reported.
pub fn timed_team_polled<F, Fut>(arch: &ArchProfile, p: usize, f: F) -> f64
where
    F: Fn(PolledComm) -> Fut + Clone + 'static,
    Fut: std::future::Future<Output = u64> + 'static,
{
    let (_, durs) = run_polled_team_phantom(arch, p, move |rank| {
        let f = f.clone();
        async move {
            let mut comm = PolledComm::new(rank);
            sm_barrier_polled(&mut comm).await.expect("barrier");
            f(comm).await
        }
    });
    durs.into_iter().max().expect("nonempty team") as f64
}

/// Scatter latency (root 0), ns.
pub fn scatter_ns(arch: &ArchProfile, p: usize, eta: usize, algo: ScatterAlgo) -> f64 {
    match engine() {
        Engine::Threads => timed_team(arch, p, move |comm| {
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc(p * eta));
            let rb = comm.alloc(eta);
            scatter(comm, algo, sb, Some(rb), eta, 0).expect("scatter");
        }),
        Engine::Polled => timed_team_polled(arch, p, move |mut comm| async move {
            let t0 = comm.time_ns();
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc(p * eta));
            let rb = comm.alloc(eta);
            scatter_polled(&mut comm, algo, sb, Some(rb), eta, 0)
                .await
                .expect("scatter");
            comm.time_ns() - t0
        }),
    }
}

/// Gather latency (root 0), ns.
pub fn gather_ns(arch: &ArchProfile, p: usize, eta: usize, algo: GatherAlgo) -> f64 {
    match engine() {
        Engine::Threads => timed_team(arch, p, move |comm| {
            let me = comm.rank();
            let sb = comm.alloc(eta);
            let rb = (me == 0).then(|| comm.alloc(p * eta));
            gather(comm, algo, Some(sb), rb, eta, 0).expect("gather");
        }),
        Engine::Polled => timed_team_polled(arch, p, move |mut comm| async move {
            let t0 = comm.time_ns();
            let me = comm.rank();
            let sb = comm.alloc(eta);
            let rb = (me == 0).then(|| comm.alloc(p * eta));
            let counts = vec![eta; p];
            gatherv_polled(&mut comm, algo, Some(sb), rb, &counts, None, 0)
                .await
                .expect("gather");
            comm.time_ns() - t0
        }),
    }
}

/// Allgather latency, ns.
pub fn allgather_ns(arch: &ArchProfile, p: usize, eta: usize, algo: AllgatherAlgo) -> f64 {
    match engine() {
        Engine::Threads => timed_team(arch, p, move |comm| {
            let sb = comm.alloc(eta);
            let rb = comm.alloc(p * eta);
            allgather(comm, algo, Some(sb), rb, eta).expect("allgather");
        }),
        Engine::Polled => timed_team_polled(arch, p, move |mut comm| async move {
            let t0 = comm.time_ns();
            let sb = comm.alloc(eta);
            let rb = comm.alloc(p * eta);
            allgather_polled(&mut comm, algo, Some(sb), rb, eta)
                .await
                .expect("allgather");
            comm.time_ns() - t0
        }),
    }
}

/// Alltoall latency, ns.
pub fn alltoall_ns(arch: &ArchProfile, p: usize, eta: usize, algo: AlltoallAlgo) -> f64 {
    match engine() {
        Engine::Threads => timed_team(arch, p, move |comm| {
            let sb = comm.alloc(p * eta);
            let rb = comm.alloc(p * eta);
            alltoall(comm, algo, Some(sb), rb, eta).expect("alltoall");
        }),
        Engine::Polled => timed_team_polled(arch, p, move |mut comm| async move {
            let t0 = comm.time_ns();
            let sb = comm.alloc(p * eta);
            let rb = comm.alloc(p * eta);
            alltoall_polled(&mut comm, algo, Some(sb), rb, eta)
                .await
                .expect("alltoall");
            comm.time_ns() - t0
        }),
    }
}

/// Bcast latency (root 0), ns.
pub fn bcast_ns(arch: &ArchProfile, p: usize, eta: usize, algo: BcastAlgo) -> f64 {
    match engine() {
        Engine::Threads => timed_team(arch, p, move |comm| {
            let buf = comm.alloc(eta);
            bcast(comm, algo, buf, eta, 0).expect("bcast");
        }),
        Engine::Polled => timed_team_polled(arch, p, move |mut comm| async move {
            let t0 = comm.time_ns();
            let buf = comm.alloc(eta);
            bcast_polled(&mut comm, algo, buf, eta, 0)
                .await
                .expect("bcast");
            comm.time_ns() - t0
        }),
    }
}

/// Which collective a library persona runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coll {
    /// MPI_Bcast.
    Bcast,
    /// MPI_Scatter.
    Scatter,
    /// MPI_Gather.
    Gather,
    /// MPI_Allgather.
    Allgather,
    /// MPI_Alltoall.
    Alltoall,
}

impl Coll {
    /// All five evaluated collectives, in Table VI order.
    pub fn all() -> [Coll; 5] {
        [
            Coll::Bcast,
            Coll::Scatter,
            Coll::Gather,
            Coll::Allgather,
            Coll::Alltoall,
        ]
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Coll::Bcast => "Bcast",
            Coll::Scatter => "Scatter",
            Coll::Gather => "Gather",
            Coll::Allgather => "Allgather",
            Coll::Alltoall => "Alltoall",
        }
    }
}

/// Latency of `coll` under a library persona, ns.
pub fn library_ns(arch: &ArchProfile, p: usize, eta: usize, coll: Coll, lib: Library) -> f64 {
    let tuner_arch = arch.clone();
    timed_team(arch, p, move |comm| {
        let tuner = Tuner::new(&tuner_arch);
        let me = comm.rank();
        match coll {
            Coll::Bcast => {
                let buf = comm.alloc(eta);
                baseline::bcast(comm, lib, &tuner, buf, eta, 0).expect("bcast");
            }
            Coll::Scatter => {
                let sb = (me == 0).then(|| comm.alloc(p * eta));
                let rb = comm.alloc(eta);
                baseline::scatter(comm, lib, &tuner, sb, Some(rb), eta, 0).expect("scatter");
            }
            Coll::Gather => {
                let sb = comm.alloc(eta);
                let rb = (me == 0).then(|| comm.alloc(p * eta));
                baseline::gather(comm, lib, &tuner, Some(sb), rb, eta, 0).expect("gather");
            }
            Coll::Allgather => {
                let sb = comm.alloc(eta);
                let rb = comm.alloc(p * eta);
                baseline::allgather(comm, lib, &tuner, Some(sb), rb, eta).expect("allgather");
            }
            Coll::Alltoall => {
                let sb = comm.alloc(p * eta);
                let rb = comm.alloc(p * eta);
                baseline::alltoall(comm, lib, &tuner, Some(sb), rb, eta).expect("alltoall");
            }
        }
    })
}

/// Per-reader latency of the One-to-all access pattern: `readers` ranks
/// concurrently read `eta` bytes from rank 0 (same buffer region or
/// per-reader regions), ns (mean over readers). The Fig 2(b)/(c) and
/// Fig 3 microbenchmark.
pub fn one_to_all_read_ns(
    arch: &ArchProfile,
    readers: usize,
    eta: usize,
    same_region: bool,
) -> f64 {
    let lats = one_to_all_read_lats(arch, readers, eta, same_region);
    stats::mean(&lats).expect("nonempty reader set")
}

/// Per-reader latencies behind [`one_to_all_read_ns`], one entry per
/// reader in rank order, ns. Exposed so summaries can report percentile
/// spread (p50/p95/p99) on top of the mean.
pub fn one_to_all_read_lats(
    arch: &ArchProfile,
    readers: usize,
    eta: usize,
    same_region: bool,
) -> Vec<f64> {
    let durs = match engine() {
        Engine::Threads => {
            run_team_phantom(arch, readers + 1, move |comm| {
                if comm.rank() == 0 {
                    let len = if same_region { eta } else { eta * readers };
                    let buf = comm.alloc(len);
                    let tok = comm.expose(buf).expect("expose");
                    for r in 1..=readers {
                        comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                            .expect("send");
                    }
                    for r in 1..=readers {
                        comm.wait_notify(r, Tag::user(2)).expect("done");
                    }
                    0u64
                } else {
                    let raw = comm.ctrl_recv(0, Tag::user(1)).expect("token");
                    let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
                    let dst = comm.alloc(eta);
                    let off = if same_region {
                        0
                    } else {
                        (comm.rank() - 1) * eta
                    };
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, off, dst, 0, eta).expect("read");
                    let d = comm.time_ns() - t0;
                    comm.notify(0, Tag::user(2)).expect("notify");
                    d
                }
            })
            .1
        }
        Engine::Polled => {
            run_polled_team_phantom(arch, readers + 1, move |rank| async move {
                let mut comm = PolledComm::new(rank);
                if rank == 0 {
                    let len = if same_region { eta } else { eta * readers };
                    let buf = comm.alloc(len);
                    let tok = comm.expose(buf).await.expect("expose");
                    for r in 1..=readers {
                        comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                            .await
                            .expect("send");
                    }
                    for r in 1..=readers {
                        comm.wait_notify(r, Tag::user(2)).await.expect("done");
                    }
                    0u64
                } else {
                    let raw = comm.ctrl_recv(0, Tag::user(1)).await.expect("token");
                    let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
                    let dst = comm.alloc(eta);
                    let off = if same_region { 0 } else { (rank - 1) * eta };
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, off, dst, 0, eta).await.expect("read");
                    let d = comm.time_ns() - t0;
                    comm.notify(0, Tag::user(2)).await.expect("notify");
                    d
                }
            })
            .1
        }
    };
    durs.iter().skip(1).map(|&d| d as f64).collect()
}

/// Per-reader latency of the All-to-all access pattern: `pairs`
/// disjoint (reader, source) pairs, ns (mean). Fig 2(a).
pub fn pairs_read_ns(arch: &ArchProfile, pairs: usize, eta: usize) -> f64 {
    let (_, durs) = run_team_phantom(arch, 2 * pairs, move |comm| {
        let me = comm.rank();
        if me % 2 == 0 {
            let buf = comm.alloc(eta);
            let tok = comm.expose(buf).expect("expose");
            comm.ctrl_send(me + 1, Tag::user(1), &tok.to_bytes())
                .expect("send");
            comm.wait_notify(me + 1, Tag::user(2)).expect("done");
            0u64
        } else {
            let raw = comm.ctrl_recv(me - 1, Tag::user(1)).expect("token");
            let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
            let dst = comm.alloc(eta);
            let t0 = comm.time_ns();
            comm.cma_read(tok, 0, dst, 0, eta).expect("read");
            let d = comm.time_ns() - t0;
            comm.notify(me - 1, Tag::user(2)).expect("notify");
            d
        }
    });
    let lats: Vec<f64> = durs.iter().skip(1).step_by(2).map(|&d| d as f64).collect();
    stats::mean(&lats).expect("nonempty pair set")
}

/// Wake-storm diagnostics from one instrumented barrier+allgather run —
/// the broadcast-wake pressure the coalescing work in PR 6 targets. All
/// fields are virtual-time/count quantities, so a probe is bitwise
/// identical on both engines (pinned by [`tests::wake_storm_engine_invariant`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WakeStorm {
    /// Engine the probe ran on (`threads` / `polled`).
    pub engine: &'static str,
    /// Barrier+allgather iterations executed.
    pub iterations: u64,
    /// Kernel events dispatched by the run.
    pub events: u64,
    /// `events / iterations`: DES cost of one barrier+allgather round.
    pub events_per_barrier: f64,
    /// Event-queue length high-water mark.
    pub peak_queue_len: u64,
    /// Largest single `wake_at` flush fan-out (threads woken at once).
    pub wake_fanout_max: u64,
    /// Mean `wake_at` flush fan-out.
    pub wake_fanout_mean: f64,
    /// Wake requests before coalescing.
    pub wakes_raw: u64,
    /// Wake requests dropped as already-pending duplicates.
    pub wakes_coalesced: u64,
}

/// Run `iters` rounds of dissemination barrier + Bruck allgather on a
/// `p`-rank team (`eta` bytes per rank) and report the wake-storm
/// diagnostics carried back on the `TeamRun`.
pub fn wake_storm_probe(
    arch: &ArchProfile,
    p: usize,
    eta: usize,
    iters: usize,
    engine: Engine,
) -> WakeStorm {
    let run = match engine {
        Engine::Threads => {
            run_team_phantom(arch, p, move |comm| {
                let sb = comm.alloc(eta);
                let rb = comm.alloc(p * eta);
                for _ in 0..iters {
                    smcoll::sm_barrier(comm).expect("barrier");
                    allgather(comm, AllgatherAlgo::Bruck, Some(sb), rb, eta).expect("allgather");
                }
            })
            .0
        }
        Engine::Polled => {
            run_polled_team_phantom(arch, p, move |rank| async move {
                let mut comm = PolledComm::new(rank);
                let sb = comm.alloc(eta);
                let rb = comm.alloc(p * eta);
                for _ in 0..iters {
                    sm_barrier_polled(&mut comm).await.expect("barrier");
                    allgather_polled(&mut comm, AllgatherAlgo::Bruck, Some(sb), rb, eta)
                        .await
                        .expect("allgather");
                }
            })
            .0
        }
    };
    let fanout = &run.sim.wake_fanout;
    WakeStorm {
        engine: engine.label(),
        iterations: iters as u64,
        events: run.events,
        events_per_barrier: run.events as f64 / (iters as f64).max(1.0),
        peak_queue_len: run.sim.queue_len_hwm,
        wake_fanout_max: fanout.max(),
        wake_fanout_mean: fanout.mean().unwrap_or(0.0),
        wakes_raw: run.sim.wakes_raw,
        wakes_coalesced: run.sim.wakes_coalesced,
    }
}

/// Aggregate step breakdown of `readers` concurrent reads of `pages`
/// pages each from rank 0 (per-reader mean), the Fig 4 experiment.
pub fn breakdown(arch: &ArchProfile, readers: usize, pages: usize) -> RankStats {
    let eta = pages * arch.page_size;
    let (run, _) = run_team_phantom(arch, readers + 1, move |comm| {
        if comm.rank() == 0 {
            let buf = comm.alloc(eta * readers);
            let tok = comm.expose(buf).expect("expose");
            for r in 1..=readers {
                comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())
                    .expect("send");
            }
            for r in 1..=readers {
                comm.wait_notify(r, Tag::user(2)).expect("done");
            }
        } else {
            let raw = comm.ctrl_recv(0, Tag::user(1)).expect("token");
            let tok = RemoteToken::from_bytes(&raw).expect("token bytes");
            let dst = comm.alloc(eta);
            comm.cma_read(tok, (comm.rank() - 1) * eta, dst, 0, eta)
                .expect("read");
            comm.notify(0, Tag::user(2)).expect("notify");
        }
    });
    let mut total = RankStats::default();
    for s in run.stats.iter().skip(1) {
        total.merge(s);
    }
    RankStats {
        syscall_ns: total.syscall_ns / readers as f64,
        check_ns: total.check_ns / readers as f64,
        lock_ns: total.lock_ns / readers as f64,
        pin_ns: total.pin_ns / readers as f64,
        copy_ns: total.copy_ns / readers as f64,
        cma_ops: total.cma_ops / readers as u64,
        bytes_read: total.bytes_read / readers as u64,
        bytes_written: total.bytes_written / readers as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_team_reports_positive_latency() {
        let arch = ArchProfile::broadwell();
        let t = scatter_ns(&arch, 8, 64 << 10, ScatterAlgo::SequentialWrite);
        assert!(t > 0.0);
    }

    /// Every engine-dispatched helper reports the identical virtual
    /// latency on both engines (the measurement-level face of the
    /// engine-equivalence suite). Serialized via explicit set_engine
    /// calls around each probe; the selector is process-wide, so this
    /// test restores Threads before returning.
    #[test]
    fn measurements_identical_on_both_engines() {
        let arch = ArchProfile::broadwell();
        let eta = 32 << 10;
        type Probe = (&'static str, Box<dyn Fn() -> f64>);
        let probes: Vec<Probe> = vec![
            (
                "scatter",
                Box::new(move || {
                    scatter_ns(
                        &ArchProfile::broadwell(),
                        6,
                        eta,
                        ScatterAlgo::ThrottledRead { k: 2 },
                    )
                }),
            ),
            (
                "gather",
                Box::new(move || {
                    gather_ns(&ArchProfile::broadwell(), 6, eta, GatherAlgo::ParallelWrite)
                }),
            ),
            (
                "allgather",
                Box::new(move || {
                    allgather_ns(&ArchProfile::broadwell(), 6, eta, AllgatherAlgo::Bruck)
                }),
            ),
            (
                "alltoall",
                Box::new(move || {
                    alltoall_ns(&ArchProfile::broadwell(), 6, eta, AlltoallAlgo::Pairwise)
                }),
            ),
            (
                "bcast",
                Box::new(move || {
                    bcast_ns(
                        &ArchProfile::broadwell(),
                        6,
                        eta,
                        BcastAlgo::KNomial { radix: 2 },
                    )
                }),
            ),
            (
                "one_to_all",
                Box::new(move || one_to_all_read_ns(&ArchProfile::broadwell(), 6, eta, false)),
            ),
        ];
        let _ = arch;
        for (name, probe) in &probes {
            set_engine(Engine::Threads);
            let t = probe();
            set_engine(Engine::Polled);
            let q = probe();
            set_engine(Engine::Threads);
            assert_eq!(t, q, "{name}: engines disagree (threads {t} vs polled {q})");
        }
    }

    /// The wake-storm probe carries only virtual-time/count diagnostics,
    /// so both engines must report the identical storm.
    #[test]
    fn wake_storm_engine_invariant() {
        let arch = ArchProfile::broadwell();
        let t = wake_storm_probe(&arch, 6, 4 << 10, 3, Engine::Threads);
        let p = wake_storm_probe(&arch, 6, 4 << 10, 3, Engine::Polled);
        assert_eq!(t.events, p.events);
        assert_eq!(t.peak_queue_len, p.peak_queue_len);
        assert_eq!(t.wake_fanout_max, p.wake_fanout_max);
        assert_eq!(t.wake_fanout_mean, p.wake_fanout_mean);
        assert_eq!(t.wakes_raw, p.wakes_raw);
        assert_eq!(t.wakes_coalesced, p.wakes_coalesced);
        assert!(t.events > 0, "probe dispatched no events");
        assert!(t.peak_queue_len > 0, "queue high-water never moved");
        assert!(t.wake_fanout_max >= 1, "no wake flushes observed");
    }

    #[test]
    fn one_to_all_contention_visible() {
        let arch = ArchProfile::knl();
        let t1 = one_to_all_read_ns(&arch, 1, 256 << 10, false);
        let t16 = one_to_all_read_ns(&arch, 16, 256 << 10, false);
        assert!(t16 > 3.0 * t1, "t16 {t16} vs t1 {t1}");
        // Same-region reads contend at least as much.
        let t16s = one_to_all_read_ns(&arch, 16, 256 << 10, true);
        assert!(t16s > 3.0 * t1);
    }

    #[test]
    fn pairs_scale_flat() {
        let arch = ArchProfile::knl();
        let t1 = pairs_read_ns(&arch, 1, 64 << 10);
        let t8 = pairs_read_ns(&arch, 8, 64 << 10);
        assert!(t8 < 2.5 * t1, "t8 {t8} vs t1 {t1}");
    }

    #[test]
    fn breakdown_is_lock_dominated_under_contention() {
        // Fig 4's message: with concurrency, lock time dominates.
        let arch = ArchProfile::broadwell();
        let solo = breakdown(&arch, 1, 128);
        let packed = breakdown(&arch, 27, 128);
        assert!(packed.lock_ns > solo.lock_ns * 5.0);
        assert!(
            packed.lock_ns > packed.copy_ns,
            "lock {} should dominate copy {}",
            packed.lock_ns,
            packed.copy_ns
        );
    }

    #[test]
    fn library_dispatch_runs_all_collectives() {
        let arch = ArchProfile::broadwell();
        for coll in Coll::all() {
            let t = library_ns(&arch, 6, 32 << 10, coll, Library::Kacc);
            assert!(t > 0.0, "{coll:?}");
        }
        let t = library_ns(&arch, 6, 32 << 10, Coll::Gather, Library::IntelMpi);
        assert!(t > 0.0);
    }
}
