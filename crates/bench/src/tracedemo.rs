//! Trace-driven artifacts: run a collective under the structured tracer
//! and derive the paper's ftrace-style phase breakdown (Fig 2
//! methodology) from the captured events, or export the full timeline as
//! Chrome trace-event JSON for Perfetto.
//!
//! Unlike the analytic charts in [`crate::figs`], these panels are
//! *measured* from per-event spans emitted by the machine layer, so they
//! double as an end-to-end check that the trace accounts for the same
//! time the simulator charges.

use crate::render::{Chart, Series};
use kacc_collectives::{
    scatter, scatterv_with_report, RecoveryReport, ScatterAlgo, ScheduleReport,
};
use kacc_comm::{Comm, CommExt};
use kacc_fault::FaultPlan;
use kacc_machine::{run_team_faulty_traced, run_team_traced, TeamRun};
use kacc_model::ArchProfile;
use kacc_trace::{chrome_trace_json, Breakdown, Event};

/// Phase span names the machine layer emits for a CMA transfer, in
/// pipeline order (Fig 2's ftrace buckets).
pub const PHASES: [&str; 5] = ["syscall", "check", "lock", "pin", "copy"];

/// Run a one-to-all parallel-read scatter (`p - 1` concurrent readers of
/// the root's exposed buffer) under the tracer and return the virtual-time
/// run summary plus every captured event.
pub fn traced_contended_scatter(
    arch: &ArchProfile,
    p: usize,
    count: usize,
) -> (TeamRun, Vec<Event>) {
    let (run, _, events) = run_team_traced(arch, p, move |comm| {
        let me = comm.rank();
        let sb = (me == 0).then(|| comm.alloc_with(&vec![0x5Au8; p * count]));
        let rb = comm.alloc(count);
        scatter(comm, ScatterAlgo::ParallelRead, sb, Some(rb), count, 0).expect("traced scatter");
    });
    (run, events)
}

/// Chrome trace-event JSON for a default contended scatter (used by
/// `repro --trace-out`).
pub fn default_trace_json(p: usize, count: usize) -> String {
    let arch = ArchProfile::broadwell();
    let (_, events) = traced_contended_scatter(&arch, p, count);
    chrome_trace_json(&events)
}

/// One rank's outcome under a fault plan: the executor report (with
/// recovery accounting) or the stringified typed error, plus the
/// received payload for verification.
type FaultyOutcome = (std::result::Result<ScheduleReport, String>, Vec<u8>);

/// The same contended one-to-all scatter as [`traced_contended_scatter`],
/// but with a fault plan installed on every transport endpoint and the
/// per-rank executor reports returned for recovery accounting.
pub fn traced_faulty_scatter(
    arch: &ArchProfile,
    p: usize,
    count: usize,
    plan: FaultPlan,
) -> (TeamRun, Vec<FaultyOutcome>, Vec<Event>) {
    run_team_faulty_traced(arch, p, plan.hook(), move |comm| {
        let me = comm.rank();
        let counts = vec![count; p];
        let sb = (me == 0).then(|| comm.alloc_with(&vec![0x5Au8; p * count]));
        let rb = comm.alloc(count);
        let res = scatterv_with_report(
            comm,
            ScatterAlgo::ParallelRead,
            sb,
            Some(rb),
            &counts,
            None,
            0,
        );
        let payload = comm.read_all(rb).unwrap_or_default();
        let res = match res {
            Ok(report) => Ok(report.expect("multi-rank scatter always runs a schedule")),
            Err(e) => Err(format!("{e:?}")),
        };
        (res, payload)
    })
}

fn sum_recovery<'a>(reports: impl Iterator<Item = &'a RecoveryReport>) -> RecoveryReport {
    let mut total = RecoveryReport::default();
    for r in reports {
        total.transient_retries += r.transient_retries;
        total.transient_ns += r.transient_ns;
        total.short_resumes += r.short_resumes;
        total.short_bytes += r.short_bytes;
        total.denied += r.denied;
        total.denied_ns += r.denied_ns;
        total.timeouts += r.timeouts;
        total.timeout_ns += r.timeout_ns;
        total.backoffs += r.backoffs;
        total.backoff_ns += r.backoff_ns;
        total.fallbacks += r.fallbacks;
        total.fallback_bytes += r.fallback_bytes;
        total.fallback_ns += r.fallback_ns;
    }
    total
}

/// `repro --fault-plan` artifact: run the contended scatter under `plan`
/// and render a human report — rank outcomes, payload verification,
/// summed recovery accounting, and the ftrace-style phase breakdown
/// (recovery spans included). Returns the text report plus the Chrome
/// trace-event JSON of the same run for `--trace-out`.
pub fn fault_plan_report(plan: FaultPlan, p: usize, count: usize) -> (String, String) {
    use std::fmt::Write as _;
    let seed = plan.seed;
    let plan_text = plan.format();
    let arch = ArchProfile::broadwell();
    let (run, outcomes, events) = traced_faulty_scatter(&arch, p, count, plan);
    let json = chrome_trace_json(&events);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Contended {p}-rank scatter ({} per rank) under fault plan (seed {seed}):",
        crate::size_label(count)
    );
    for line in plan_text.lines() {
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(out, "  virtual end: {} ns", run.end_ns);

    let ok = outcomes.iter().filter(|(r, _)| r.is_ok()).count();
    let _ = writeln!(out, "  rank outcomes: {ok}/{p} completed");
    let expected = vec![0x5Au8; count];
    for (rank, (res, payload)) in outcomes.iter().enumerate() {
        match res {
            Ok(_) if *payload == expected => {}
            Ok(_) => {
                let _ = writeln!(out, "    rank {rank}: PAYLOAD MISMATCH");
            }
            Err(e) => {
                let _ = writeln!(out, "    rank {rank}: {e}");
            }
        }
    }

    let rec = sum_recovery(
        outcomes
            .iter()
            .filter_map(|(r, _)| r.as_ref().ok())
            .map(|r| &r.recovery),
    );
    let _ = writeln!(out, "  recovery (summed over completed ranks):");
    let _ = writeln!(
        out,
        "    transient retries {:>6}  ({} ns in failed attempts, {} backoffs / {} ns)",
        rec.transient_retries, rec.transient_ns, rec.backoffs, rec.backoff_ns
    );
    let _ = writeln!(
        out,
        "    short resumes     {:>6}  ({} bytes salvaged)",
        rec.short_resumes, rec.short_bytes
    );
    let _ = writeln!(
        out,
        "    denied -> fallback{:>6}  ({} fallbacks, {} bytes, {} ns two-copy)",
        rec.denied, rec.fallbacks, rec.fallback_bytes, rec.fallback_ns
    );
    let _ = writeln!(out, "    timeouts          {:>6}", rec.timeouts);

    let _ = writeln!(out, "  phase breakdown (recovery spans included):");
    for line in Breakdown::from_events(&events).to_table().lines() {
        let _ = writeln!(out, "    {line}");
    }
    (out, json)
}

/// `breakdown` artifact: phase shares of a contended one-to-all scatter
/// versus reader count, aggregated from trace spans (the measured
/// counterpart of the analytic Fig 2(c) panel). The notes carry the full
/// ftrace-style table for each reader count.
pub fn breakdown(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::broadwell();
    let readers: Vec<usize> = if quick {
        vec![3, 7]
    } else {
        vec![1, 3, 7, 15, 27]
    };
    let count = if quick { 16 << 10 } else { 128 << 10 };
    let mut chart = Chart::new(
        "fig2c-trace",
        "Traced scatter phase breakdown vs concurrent readers (ftrace methodology)",
        "Concurrent Readers",
        "Share of Accounted Time (%)",
    );
    let mut shares: Vec<Vec<f64>> = vec![Vec::new(); PHASES.len()];
    for &r in &readers {
        let (run, events) = traced_contended_scatter(&arch, r + 1, count);
        let b = Breakdown::from_events(&events);
        for (i, ph) in PHASES.iter().enumerate() {
            shares[i].push(100.0 * b.share(ph));
        }
        chart.notes.push(format!(
            "{r} readers, end at {} ns:\n{}",
            run.end_ns,
            b.to_table()
        ));
    }
    for (i, ph) in PHASES.iter().enumerate() {
        chart.series.push(Series::new(*ph, &readers, &shares[i]));
    }
    vec![chart]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_one() {
        let charts = breakdown(true);
        assert_eq!(charts.len(), 1);
        let chart = &charts[0];
        assert_eq!(chart.series.len(), PHASES.len());
        for &x in &chart.xs() {
            // Every CMA phase shows up with a sane share. Shares are of
            // *all* accounted span time (step:* and ctrl spans included,
            // and executor step spans nest the phase spans they wrap),
            // so the five phases sum to well under 100%.
            for s in &chart.series {
                let y = s.at(x).expect("every series covers every x");
                assert!(y > 0.0 && y < 100.0, "x={x}: phase {} share {y}%", s.label);
            }
        }
    }

    #[test]
    fn default_trace_json_is_nonempty_and_valid() {
        let json = default_trace_json(4, 4 << 10);
        kacc_trace::validate::validate_chrome_json(&json).expect("exported trace validates");
    }

    #[test]
    fn fault_plan_report_recovers_and_validates() {
        // The EXPERIMENTS.md §"Recovery" plan: 5% transient EAGAIN on
        // every transport op plus probabilistic half-way CMA truncation.
        let plan = FaultPlan::parse(
            "seed 42\n\
             rule prob=0.05 kind=transient errno=11\n\
             rule ops=cma_read prob=0.25 max=2 kind=truncate frac=1/2\n",
        )
        .expect("plan parses");
        let (text, json) = fault_plan_report(plan, 8, 32 << 10);
        // Every rank recovers under the default policy: no error lines.
        assert!(text.contains("rank outcomes: 8/8 completed"), "{text}");
        assert!(!text.contains("PAYLOAD MISMATCH"), "{text}");
        // The plan deterministically fires at this seed, and both the
        // accounting and the trace show the recovery work.
        assert!(!text.contains("transient retries      0"), "{text}");
        assert!(text.contains("fault:"), "{text}");
        kacc_trace::validate::validate_chrome_json(&json).expect("faulty trace validates");
    }
}
