//! Trace-driven artifacts: run a collective under the structured tracer
//! and derive the paper's ftrace-style phase breakdown (Fig 2
//! methodology) from the captured events, or export the full timeline as
//! Chrome trace-event JSON for Perfetto.
//!
//! Unlike the analytic charts in [`crate::figs`], these panels are
//! *measured* from per-event spans emitted by the machine layer, so they
//! double as an end-to-end check that the trace accounts for the same
//! time the simulator charges.

use crate::render::{Chart, Series};
use kacc_collectives::{scatter, ScatterAlgo};
use kacc_comm::{Comm, CommExt};
use kacc_machine::{run_team_traced, TeamRun};
use kacc_model::ArchProfile;
use kacc_trace::{chrome_trace_json, Breakdown, Event};

/// Phase span names the machine layer emits for a CMA transfer, in
/// pipeline order (Fig 2's ftrace buckets).
pub const PHASES: [&str; 5] = ["syscall", "check", "lock", "pin", "copy"];

/// Run a one-to-all parallel-read scatter (`p - 1` concurrent readers of
/// the root's exposed buffer) under the tracer and return the virtual-time
/// run summary plus every captured event.
pub fn traced_contended_scatter(
    arch: &ArchProfile,
    p: usize,
    count: usize,
) -> (TeamRun, Vec<Event>) {
    let (run, _, events) = run_team_traced(arch, p, move |comm| {
        let me = comm.rank();
        let sb = (me == 0).then(|| comm.alloc_with(&vec![0x5Au8; p * count]));
        let rb = comm.alloc(count);
        scatter(comm, ScatterAlgo::ParallelRead, sb, Some(rb), count, 0).expect("traced scatter");
    });
    (run, events)
}

/// Chrome trace-event JSON for a default contended scatter (used by
/// `repro --trace-out`).
pub fn default_trace_json(p: usize, count: usize) -> String {
    let arch = ArchProfile::broadwell();
    let (_, events) = traced_contended_scatter(&arch, p, count);
    chrome_trace_json(&events)
}

/// `breakdown` artifact: phase shares of a contended one-to-all scatter
/// versus reader count, aggregated from trace spans (the measured
/// counterpart of the analytic Fig 2(c) panel). The notes carry the full
/// ftrace-style table for each reader count.
pub fn breakdown(quick: bool) -> Vec<Chart> {
    let arch = ArchProfile::broadwell();
    let readers: Vec<usize> = if quick {
        vec![3, 7]
    } else {
        vec![1, 3, 7, 15, 27]
    };
    let count = if quick { 16 << 10 } else { 128 << 10 };
    let mut chart = Chart::new(
        "fig2c-trace",
        "Traced scatter phase breakdown vs concurrent readers (ftrace methodology)",
        "Concurrent Readers",
        "Share of Accounted Time (%)",
    );
    let mut shares: Vec<Vec<f64>> = vec![Vec::new(); PHASES.len()];
    for &r in &readers {
        let (run, events) = traced_contended_scatter(&arch, r + 1, count);
        let b = Breakdown::from_events(&events);
        for (i, ph) in PHASES.iter().enumerate() {
            shares[i].push(100.0 * b.share(ph));
        }
        chart.notes.push(format!(
            "{r} readers, end at {} ns:\n{}",
            run.end_ns,
            b.to_table()
        ));
    }
    for (i, ph) in PHASES.iter().enumerate() {
        chart.series.push(Series::new(*ph, &readers, &shares[i]));
    }
    vec![chart]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shares_sum_to_one() {
        let charts = breakdown(true);
        assert_eq!(charts.len(), 1);
        let chart = &charts[0];
        assert_eq!(chart.series.len(), PHASES.len());
        for &x in &chart.xs() {
            // Every CMA phase shows up with a sane share. Shares are of
            // *all* accounted span time (step:* and ctrl spans included,
            // and executor step spans nest the phase spans they wrap),
            // so the five phases sum to well under 100%.
            for s in &chart.series {
                let y = s.at(x).expect("every series covers every x");
                assert!(y > 0.0 && y < 100.0, "x={x}: phase {} share {y}%", s.label);
            }
        }
    }

    #[test]
    fn default_trace_json_is_nonempty_and_valid() {
        let json = default_trace_json(4, 4 << 10);
        kacc_trace::validate::validate_chrome_json(&json).expect("exported trace validates");
    }
}
