//! Fig 9 as a Criterion bench: pairwise Alltoall over two-copy shared
//! memory vs pt2pt CMA vs the native CMA collective (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{alltoall_ns, library_ns, Coll};
use kacc_bench::size_label;
use kacc_collectives::AlltoallAlgo;
use kacc_model::ArchProfile;
use kacc_mpi::Library;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    let mut g = c.benchmark_group("fig09/KNL");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for eta in [16 << 10, 256 << 10] {
        let shm = library_ns(&arch, p, eta, Coll::Alltoall, Library::IntelMpi);
        g.bench_function(format!("shmem/{}", size_label(eta)), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(shm * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
        let pt = library_ns(&arch, p, eta, Coll::Alltoall, Library::Mvapich2);
        g.bench_function(format!("cma-pt2pt/{}", size_label(eta)), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(pt * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
        let coll = alltoall_ns(&arch, p, eta, AlltoallAlgo::Pairwise);
        g.bench_function(format!("cma-coll/{}", size_label(eta)), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(coll * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
