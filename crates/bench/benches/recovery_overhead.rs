//! Recovery-machinery overhead on the executor hot path (wall-clock).
//!
//! The `RecoveryPolicy` retry/fallback ladder wraps every fallible step
//! of the schedule executor, so its fault-free cost must be noise: each
//! step pays one closure call and one error-match that never fires. This
//! bench replays a CMA-dense single-rank schedule on the instant-cost
//! [`NullComm`] — so almost all measured time *is* executor bookkeeping —
//! and compares three paths:
//!
//! * `policy-none`: the plain `execute` path, no recovery wrapping at
//!   all (the pre-recovery baseline the zero-cost claim is pinned
//!   against);
//! * `policy-default-clean`: `execute_with_policy` with the default
//!   policy and no faults, i.e. what every collective now runs;
//! * `policy-default-faulty`: the same, but the transport fails roughly
//!   one CMA read in 17 with a transient `EAGAIN`, so the measured delta
//!   is the genuine price of retries (backoff is virtual-time and free
//!   on `NullComm`).
//!
//! `policy-default-clean` must sit within noise of `policy-none`; the
//! chaos suite separately pins the stronger bitwise-virtual-time
//! equivalence on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::nullcomm::NullComm;
use kacc_collectives::exec::{execute, execute_with_policy, Bindings, RecoveryPolicy};
use kacc_collectives::schedule::{Schedule, Slot, Step, TokenReg};
use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use kacc_trace::Tracer;
use std::hint::black_box;
use std::time::Duration;

/// Wraps [`NullComm`] and fails every `period`-th CMA read with a
/// transient `EAGAIN`. The executor's immediate retry is a fresh call
/// (and a fresh counter value), so it succeeds — each injected fault
/// costs exactly one retry.
struct FaultyComm {
    inner: NullComm,
    period: u64,
    ops: u64,
}

impl FaultyComm {
    fn new(period: u64) -> FaultyComm {
        FaultyComm {
            inner: NullComm::new(),
            period,
            ops: 0,
        }
    }
}

impl Comm for FaultyComm {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn topology(&self) -> Topology {
        self.inner.topology()
    }

    fn alloc(&mut self, len: usize) -> BufId {
        self.inner.alloc(len)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.inner.free(buf)
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        self.inner.buf_len(buf)
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.inner.write_local(buf, off, data)
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.inner.read_local(buf, off, out)
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.inner.copy_local(src, src_off, dst, dst_off, len)
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        self.inner.expose(buf)
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.ops += 1;
        if self.ops.is_multiple_of(self.period) {
            return Err(CommError::Os(11 /* EAGAIN */));
        }
        self.inner.cma_read(token, remote_off, dst, dst_off, len)
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.inner.cma_write(token, remote_off, src, src_off, len)
    }

    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.inner.ctrl_send(to, tag, data)
    }

    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        self.inner.ctrl_recv(from, tag)
    }

    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        self.inner.shm_send_data(to, tag, src, off, len)
    }

    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        self.inner.shm_recv_data(from, tag, dst, off, len)
    }

    fn time_ns(&self) -> u64 {
        self.inner.time_ns()
    }

    fn sleep_ns(&mut self, ns: u64) {
        self.inner.sleep_ns(ns)
    }
}

/// A CMA-dense single-rank plan: expose once, then `rounds` read/write
/// round trips against the exposed buffer. CMA steps are the ones the
/// full recovery ladder (`recovered_cma`) wraps, so they dominate the
/// per-step dispatch being measured. Small payloads keep memcpy cost low
/// relative to dispatch.
fn cma_schedule(rounds: usize, block: usize) -> Schedule {
    let mut steps = vec![Step::Expose {
        slot: Slot::Send,
        reg: TokenReg(0),
    }];
    for _ in 0..rounds {
        steps.push(Step::CmaRead {
            token: TokenReg(0),
            remote_off: 0,
            dst: Slot::Temp(0),
            dst_off: 0,
            len: block,
        });
        steps.push(Step::CmaWrite {
            token: TokenReg(0),
            remote_off: 0,
            src: Slot::Temp(0),
            src_off: 0,
            len: block,
        });
    }
    Schedule {
        p: 1,
        rank: 0,
        token_regs: 1,
        temps: vec![block],
        steps,
        class: None,
    }
}

fn bench(c: &mut Criterion) {
    let rounds = 256;
    let block = 64;
    let sched = cma_schedule(rounds, block);
    let tracer = Tracer::off();

    let mut g = c.benchmark_group("recovery_overhead/executor-513-steps");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    // Baseline: the plain executor, no recovery wrapping at all.
    let mut comm = NullComm::new();
    let send = comm.alloc(block);
    let bind = Bindings {
        send: Some(send),
        recv: None,
    };
    g.bench_function("policy-none", |b| {
        b.iter(|| black_box(execute(&mut comm, black_box(&sched), &bind).unwrap()))
    });

    // Fault-free default policy: what every collective runs today. The
    // delta vs `policy-none` is the whole cost of the recovery ladder on
    // a clean run and must be within noise.
    let policy = RecoveryPolicy::default();
    g.bench_function("policy-default-clean", |b| {
        b.iter(|| {
            black_box(
                execute_with_policy(&mut comm, black_box(&sched), &bind, &tracer, &policy).unwrap(),
            )
        })
    });

    // ~1/17 of CMA reads fail transiently and are retried: the delta vs
    // `policy-default-clean` prices the retries themselves.
    let mut faulty = FaultyComm::new(17);
    let fsend = faulty.alloc(block);
    let fbind = Bindings {
        send: Some(fsend),
        recv: None,
    };
    g.bench_function("policy-default-faulty", |b| {
        b.iter(|| {
            let report =
                execute_with_policy(&mut faulty, black_box(&sched), &fbind, &tracer, &policy)
                    .unwrap();
            assert!(report.recovery.transient_retries > 0, "faults never fired");
            black_box(report)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
