//! Fig 10 as a Criterion bench: Allgather algorithms (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::allgather_ns;
use kacc_bench::size_label;
use kacc_collectives::AllgatherAlgo;
use kacc_model::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for arch in [ArchProfile::knl(), ArchProfile::broadwell()] {
        let p = arch.default_procs;
        let mut g = c.benchmark_group(format!("fig10/{}", arch.name));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let mut algos = vec![
            ("ring-source-read", AllgatherAlgo::RingSourceRead),
            ("ring-neighbor-1", AllgatherAlgo::RingNeighbor { j: 1 }),
            ("bruck", AllgatherAlgo::Bruck),
        ];
        if p.is_power_of_two() {
            algos.push(("recursive-doubling", AllgatherAlgo::RecursiveDoubling));
        }
        if arch.sockets > 1 {
            algos.push(("ring-neighbor-5", AllgatherAlgo::RingNeighbor { j: 5 }));
        }
        for eta in [16 << 10, 256 << 10] {
            for (label, algo) in &algos {
                let ns = allgather_ns(&arch, p, eta, *algo);
                g.bench_function(format!("{label}/{}", size_label(eta)), |b| {
                    b.iter_custom(|iters| {
                        // Report exact simulated time; the capped sleep
                        // gives criterion's wall-clock warm-up a
                        // heartbeat so iteration counts stay sane.
                        let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                        std::thread::sleep(d.min(Duration::from_millis(25)));
                        d
                    })
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
