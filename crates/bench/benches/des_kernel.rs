//! DES kernel throughput: wall-clock cost per simulated event.
//!
//! Every figure in the reproduction is a sweep of `run_team` points, so
//! the kernel's per-event overhead (heap traffic, floor hand-offs,
//! thread setup) multiplies into everything. This bench pins three
//! layers of that cost:
//!
//! * `one_to_all_p64` — the paper's contention microbenchmark at p=64
//!   (65 simulated ranks, fluid-server wake storms): the PR-4
//!   acceptance gate measures events/sec here.
//! * `advance_heavy` — a single thread burning timer self-wakes, the
//!   direct-handoff fast path's best case.
//! * `pingpong` — two threads strictly alternating via external wakes,
//!   the floor-transfer worst case (no fast path possible).
//!
//! Simulated-event counts per iteration are deterministic, so
//! events/sec = events-per-iter / (ns-per-iter · 1e-9); each benchmark
//! prints its event count once so the conversion is mechanical.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::one_to_all_read_ns;
use kacc_model::ArchProfile;
use kacc_sim_core::{total_events, Poll, Sim};
use std::hint::black_box;
use std::time::Duration;

/// Events processed by `f` (deterministic, so one probe run suffices).
fn events_of(f: impl FnOnce()) -> u64 {
    let before = total_events();
    f();
    total_events() - before
}

fn one_to_all(arch: &ArchProfile) -> f64 {
    one_to_all_read_ns(arch, 64, 64 << 10, false)
}

fn advance_heavy(steps: u64) -> u64 {
    let mut sim = Sim::new(());
    sim.spawn(move |ctx| {
        for _ in 0..steps {
            ctx.advance(3);
        }
    });
    sim.run().end_time
}

fn pingpong(rounds: u64) -> u64 {
    let mut sim = Sim::new(0u64);
    for me in 0..2usize {
        sim.spawn(move |ctx| {
            let peer = 1 - me;
            for _ in 0..rounds {
                // Wait until the shared counter's parity selects us, then
                // bump it and wake the peer: a pure floor hand-off chain.
                ctx.poll("turn", move |count: &mut u64, w, now| {
                    if *count as usize % 2 == me {
                        *count += 1;
                        w.wake_at(peer, now + 1);
                        Poll::Ready(())
                    } else {
                        Poll::Wait { wake_at: None }
                    }
                });
            }
        });
    }
    sim.run().end_time
}

fn bench(c: &mut Criterion) {
    let knl = ArchProfile::knl();

    let mut g = c.benchmark_group("des_kernel");
    g.sample_size(12)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    println!(
        "des_kernel/one_to_all_p64: {} simulated events per iter",
        events_of(|| {
            one_to_all(&knl);
        })
    );
    g.bench_function("one_to_all_p64", |b| {
        b.iter(|| black_box(one_to_all(black_box(&knl))))
    });

    let steps = 20_000u64;
    println!(
        "des_kernel/advance_heavy: {} simulated events per iter",
        events_of(|| {
            advance_heavy(steps);
        })
    );
    g.bench_function("advance_heavy", |b| {
        b.iter(|| black_box(advance_heavy(black_box(steps))))
    });

    let rounds = 5_000u64;
    println!(
        "des_kernel/pingpong: {} simulated events per iter",
        events_of(|| {
            pingpong(rounds);
        })
    );
    g.bench_function("pingpong", |b| {
        b.iter(|| black_box(pingpong(black_box(rounds))))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
