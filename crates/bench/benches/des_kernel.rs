//! DES kernel throughput: wall-clock cost per simulated event.
//!
//! Every figure in the reproduction is a sweep of `run_team` points, so
//! the kernel's per-event overhead (heap traffic, floor hand-offs,
//! thread setup) multiplies into everything. This bench pins the cost on
//! both engines:
//!
//! * `one_to_all_p64` / `one_to_all_p64_polled` — the paper's contention
//!   microbenchmark at p=64 (65 simulated ranks, fluid-server wake
//!   storms) on the thread-per-rank and the thread-free polled engine:
//!   the PR-4/PR-6 acceptance gates measure events/sec here.
//! * `advance_heavy` / `advance_heavy_polled` — a single task burning
//!   timer self-wakes, the direct-handoff fast path's best case.
//! * `pingpong` / `pingpong_polled` — two tasks strictly alternating via
//!   external wakes, the floor-transfer worst case for the threads
//!   engine (every event is a futex round-trip) and the polled engine's
//!   biggest win (every event is a queue pop).
//!
//! Simulated-event counts per iteration are deterministic, so
//! events/sec = events-per-iter / (ns-per-iter · 1e-9); each benchmark
//! prints its event count and a one-shot events/sec estimate once so the
//! conversion is mechanical.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{one_to_all_read_ns, set_engine, Engine};
use kacc_model::ArchProfile;
use kacc_sim_core::polled::{sim_advance, sim_poll, PolledSim};
use kacc_sim_core::{total_events, Poll, Sim};
use std::hint::black_box;
use std::time::Duration;

/// Events processed by `f` (deterministic, so one probe run suffices),
/// plus a single-run events/sec estimate for the printed summary.
fn probe(f: impl Fn()) -> (u64, f64) {
    let before = total_events();
    let t0 = std::time::Instant::now();
    f();
    let secs = t0.elapsed().as_secs_f64();
    let events = total_events() - before;
    (events, events as f64 / secs.max(1e-9))
}

fn one_to_all(arch: &ArchProfile, engine: Engine) -> f64 {
    set_engine(engine);
    let ns = one_to_all_read_ns(arch, 64, 64 << 10, false);
    set_engine(Engine::Threads);
    ns
}

fn advance_heavy(steps: u64) -> u64 {
    let mut sim = Sim::new(());
    sim.spawn(move |ctx| {
        for _ in 0..steps {
            ctx.advance(3);
        }
    });
    sim.run().end_time
}

fn advance_heavy_polled(steps: u64) -> u64 {
    let mut sim = PolledSim::new(());
    sim.spawn(move |_tid| async move {
        for _ in 0..steps {
            sim_advance::<()>(3).await;
        }
    });
    sim.run().end_time
}

fn pingpong(rounds: u64) -> u64 {
    let mut sim = Sim::new(0u64);
    for me in 0..2usize {
        sim.spawn(move |ctx| {
            let peer = 1 - me;
            for _ in 0..rounds {
                // Wait until the shared counter's parity selects us, then
                // bump it and wake the peer: a pure floor hand-off chain.
                ctx.poll("turn", move |count: &mut u64, w, now| {
                    if *count as usize % 2 == me {
                        *count += 1;
                        w.wake_at(peer, now + 1);
                        Poll::Ready(())
                    } else {
                        Poll::Wait { wake_at: None }
                    }
                });
            }
        });
    }
    sim.run().end_time
}

fn pingpong_polled(rounds: u64) -> u64 {
    let mut sim = PolledSim::new(0u64);
    for me in 0..2usize {
        sim.spawn(move |_tid| async move {
            let peer = 1 - me;
            for _ in 0..rounds {
                sim_poll("turn", move |count: &mut u64, w, now| {
                    if *count as usize % 2 == me {
                        *count += 1;
                        w.wake_at(peer, now + 1);
                        Poll::Ready(())
                    } else {
                        Poll::Wait { wake_at: None }
                    }
                })
                .await;
            }
        });
    }
    sim.run().end_time
}

fn bench(c: &mut Criterion) {
    let knl = ArchProfile::knl();

    let mut g = c.benchmark_group("des_kernel");
    g.sample_size(12)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    // The two engines must agree on the simulated result before their
    // costs are worth comparing.
    let t = one_to_all(&knl, Engine::Threads);
    let q = one_to_all(&knl, Engine::Polled);
    assert_eq!(t, q, "engines disagree on one_to_all_p64");

    for engine in [Engine::Threads, Engine::Polled] {
        let (events, eps) = probe(|| {
            one_to_all(&knl, engine);
        });
        let suffix = match engine {
            Engine::Threads => "",
            Engine::Polled => "_polled",
        };
        println!(
            "des_kernel/one_to_all_p64{suffix}: {events} simulated events per iter (~{eps:.0} events/sec)"
        );
        g.bench_function(format!("one_to_all_p64{suffix}"), |b| {
            b.iter(|| black_box(one_to_all(black_box(&knl), engine)))
        });
    }

    let steps = 20_000u64;
    assert_eq!(advance_heavy(steps), advance_heavy_polled(steps));
    let (events, eps) = probe(|| {
        advance_heavy(steps);
    });
    println!("des_kernel/advance_heavy: {events} simulated events per iter (~{eps:.0} events/sec)");
    g.bench_function("advance_heavy", |b| {
        b.iter(|| black_box(advance_heavy(black_box(steps))))
    });
    let (events, eps) = probe(|| {
        advance_heavy_polled(steps);
    });
    println!(
        "des_kernel/advance_heavy_polled: {events} simulated events per iter (~{eps:.0} events/sec)"
    );
    g.bench_function("advance_heavy_polled", |b| {
        b.iter(|| black_box(advance_heavy_polled(black_box(steps))))
    });

    let rounds = 5_000u64;
    assert_eq!(pingpong(rounds), pingpong_polled(rounds));
    let (events, eps) = probe(|| {
        pingpong(rounds);
    });
    println!("des_kernel/pingpong: {events} simulated events per iter (~{eps:.0} events/sec)");
    g.bench_function("pingpong", |b| {
        b.iter(|| black_box(pingpong(black_box(rounds))))
    });
    let (events, eps) = probe(|| {
        pingpong_polled(rounds);
    });
    println!(
        "des_kernel/pingpong_polled: {events} simulated events per iter (~{eps:.0} events/sec)"
    );
    g.bench_function("pingpong_polled", |b| {
        b.iter(|| black_box(pingpong_polled(black_box(rounds))))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
