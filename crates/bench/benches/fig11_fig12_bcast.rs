//! Figs 11–12 as Criterion benches: Broadcast algorithms and the model
//! validation gap (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::bcast_ns;
use kacc_bench::size_label;
use kacc_collectives::BcastAlgo;
use kacc_model::{predict, ArchProfile};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    {
        let mut g = c.benchmark_group("fig11/KNL");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        for eta in [64 << 10, 1 << 20] {
            for (label, algo) in [
                ("direct-read", BcastAlgo::DirectRead),
                ("direct-write", BcastAlgo::DirectWrite),
                ("knomial-5", BcastAlgo::KNomial { radix: 5 }),
                ("scatter-allgather", BcastAlgo::ScatterAllgather),
            ] {
                let ns = bcast_ns(&arch, p, eta, algo);
                g.bench_function(format!("{label}/{}", size_label(eta)), |b| {
                    b.iter_custom(|iters| {
                        // Report exact simulated time; the capped sleep
                        // gives criterion's wall-clock warm-up a
                        // heartbeat so iteration counts stay sane.
                        let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                        std::thread::sleep(d.min(Duration::from_millis(25)));
                        d
                    })
                });
            }
        }
        g.finish();
    }
    // Fig 12: report modeled values alongside the simulated ones so the
    // criterion report shows the validation gap.
    let params = arch.nominal_model();
    let mut g = c.benchmark_group("fig12/KNL-validation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    let eta = 1 << 20;
    let actual = bcast_ns(&arch, p, eta, BcastAlgo::DirectRead);
    g.bench_function("actual/direct-read/1M", |b| {
        b.iter_custom(|iters| {
            // Report exact simulated time; the capped sleep
            // gives criterion's wall-clock warm-up a
            // heartbeat so iteration counts stay sane.
            let d = Duration::from_secs_f64(actual * 1e-9 * iters as f64);
            std::thread::sleep(d.min(Duration::from_millis(25)));
            d
        })
    });
    let modeled = predict::bcast_direct_read(&params, p, eta);
    g.bench_function("modeled/direct-read/1M", |b| {
        b.iter_custom(|iters| {
            // Report exact simulated time; the capped sleep
            // gives criterion's wall-clock warm-up a
            // heartbeat so iteration counts stay sane.
            let d = Duration::from_secs_f64(modeled * 1e-9 * iters as f64);
            std::thread::sleep(d.min(Duration::from_millis(25)));
            d
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
