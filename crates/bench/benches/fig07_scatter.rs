//! Fig 7 as a Criterion bench: Scatter algorithm latencies. The
//! reported time is *simulated* latency (deterministic), surfaced
//! through `iter_custom`.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::scatter_ns;
use kacc_bench::size_label;
use kacc_collectives::ScatterAlgo;
use kacc_model::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for arch in [ArchProfile::knl(), ArchProfile::broadwell()] {
        let p = arch.default_procs;
        let mut g = c.benchmark_group(format!("fig07/{}", arch.name));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        for eta in [64 << 10, 1 << 20] {
            for (label, algo) in [
                ("parallel-read", ScatterAlgo::ParallelRead),
                ("sequential-write", ScatterAlgo::SequentialWrite),
                ("throttled-4", ScatterAlgo::ThrottledRead { k: 4 }),
                ("throttled-8", ScatterAlgo::ThrottledRead { k: 8 }),
            ] {
                let ns = scatter_ns(&arch, p, eta, algo);
                g.bench_function(format!("{label}/{}", size_label(eta)), |b| {
                    b.iter_custom(|iters| {
                        {
                            // Report exact simulated time; the capped sleep
                            // gives criterion's wall-clock warm-up a
                            // heartbeat so iteration counts stay sane.
                            let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                            std::thread::sleep(d.min(Duration::from_millis(25)));
                            d
                        }
                    })
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
