//! Tables III–IV as Criterion benches: the parameter-extraction pipeline
//! (simulated probe latencies surfaced per step), plus Table VI/VII-style
//! speedup points.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{library_ns, Coll};
use kacc_machine::SimProbe;
use kacc_model::extract::{CmaProbe, ProbeSpec};
use kacc_model::ArchProfile;
use kacc_mpi::Library;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    // Table III: the four step-isolating probes (simulated time).
    let arch = ArchProfile::knl();
    let mut probe = SimProbe::new(arch.clone());
    let s = arch.page_size;
    let mut g = c.benchmark_group("table3/KNL");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for (label, spec) in [
        ("t1-syscall", ProbeSpec::syscall()),
        ("t2-access-check", ProbeSpec::access_check()),
        ("t3-lock-pin-100p", ProbeSpec::lock_pin(100, s, 1)),
        ("t4-copy-100p", ProbeSpec::full(100, s, 1)),
    ] {
        let ns = probe.probe(spec);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
    }
    g.finish();

    // Table VI headline point: large-message Gather, ours vs MVAPICH2.
    let p = arch.default_procs;
    let eta = 1 << 20;
    let mut g = c.benchmark_group("table6/KNL/gather-1M");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for lib in [Library::Kacc, Library::Mvapich2] {
        let ns = library_ns(&arch, p, eta, Coll::Gather, lib);
        g.bench_function(lib.label(), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
