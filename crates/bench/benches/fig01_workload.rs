//! Fig 1 as a Criterion bench: synthetic XSEDE-like trace generation and
//! bucketization throughput (real wall time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kacc_bench::workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01/workload");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("generate-100k", |b| {
        b.iter(|| workload::generate(100_000, std::hint::black_box(42)))
    });
    g.bench_function("histogram-100k", |b| {
        b.iter_batched(
            || workload::generate(100_000, 42),
            |jobs| workload::histogram(&jobs),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
