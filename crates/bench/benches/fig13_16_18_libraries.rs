//! Figs 13–16 and 18 as Criterion benches: every collective under every
//! library persona (simulated time). Tables VI–VII are the ratios of
//! these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{library_ns, Coll};
use kacc_bench::size_label;
use kacc_model::ArchProfile;
use kacc_mpi::Library;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    for coll in Coll::all() {
        let mut g = c.benchmark_group(format!("libraries/KNL/{}", coll.label()));
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let heavy = coll == Coll::Alltoall || coll == Coll::Allgather;
        let eta = if heavy { 64 << 10 } else { 1 << 20 };
        for lib in [
            Library::Kacc,
            Library::Mvapich2,
            Library::IntelMpi,
            Library::OpenMpi,
        ] {
            let ns = library_ns(&arch, p, eta, coll, lib);
            g.bench_function(format!("{}/{}", lib.label(), size_label(eta)), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
