//! Fig 5 as a Criterion bench: the γ measurement + NLLS fitting
//! pipeline (real wall time of the numerics, simulated probe data).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_machine::SimProbe;
use kacc_model::extract::measure_gamma;
use kacc_model::gamma::fit_gamma;
use kacc_model::ArchProfile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05/gamma");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500));
    let mut probe = SimProbe::new(ArchProfile::knl());
    let points = measure_gamma(&mut probe, &[2, 4, 8, 16, 32], &[10, 50, 100]);
    g.bench_function("nlls-fit", |b| {
        b.iter(|| fit_gamma(std::hint::black_box(&points)))
    });
    g.bench_function("measure-5-concurrency-levels", |b| {
        b.iter(|| {
            let mut probe = SimProbe::new(ArchProfile::knl());
            measure_gamma(&mut probe, &[2, 4, 8, 16, 32], &[50])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
