//! Fig 17 as a Criterion bench: multi-node Gather, single-level vs
//! two-level (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_model::ArchProfile;
use kacc_netsim::{cluster_gather, MultiNodeStrategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let fabric = arch.default_fabric();
    let rpn = 64;
    let eta = 64 << 10;
    let mut g = c.benchmark_group("fig17/gather-64K");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for nodes in [2usize, 4, 8] {
        let single = cluster_gather(
            &arch,
            nodes,
            rpn,
            fabric.clone(),
            eta,
            MultiNodeStrategy::SingleLevel,
        )
        .end_ns as f64;
        g.bench_function(format!("single-level/{nodes}nodes"), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(single * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
        let two = cluster_gather(
            &arch,
            nodes,
            rpn,
            fabric.clone(),
            eta,
            MultiNodeStrategy::TwoLevel { k: 4 },
        )
        .end_ns as f64;
        g.bench_function(format!("two-level/{nodes}nodes"), |b| {
            b.iter_custom(|iters| {
                // Report exact simulated time; the capped sleep
                // gives criterion's wall-clock warm-up a
                // heartbeat so iteration counts stay sane.
                let d = Duration::from_secs_f64(two * 1e-9 * iters as f64);
                std::thread::sleep(d.min(Duration::from_millis(25)));
                d
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
