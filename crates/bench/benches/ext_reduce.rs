//! Extension bench (paper §IX future work): contention-aware Reduce —
//! sequential root-pull vs the k-nomial combining tree (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::timed_team;
use kacc_collectives::reduce::{reduce, Dtype, ReduceAlgo, ReduceOp};
use kacc_comm::Comm;
use kacc_model::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    let mut g = c.benchmark_group("ext_reduce/KNL");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for eta in [64 << 10, 1 << 20] {
        for (label, algo) in [
            ("sequential-read", ReduceAlgo::SequentialRead),
            ("knomial-2", ReduceAlgo::KNomialTree { radix: 2 }),
            ("knomial-4", ReduceAlgo::KNomialTree { radix: 4 }),
            ("knomial-8", ReduceAlgo::KNomialTree { radix: 8 }),
        ] {
            let ns = timed_team(&arch, p, move |comm| {
                let sb = comm.alloc(eta);
                let rb = (comm.rank() == 0).then(|| comm.alloc(eta));
                reduce(comm, algo, sb, rb, eta, Dtype::U64, ReduceOp::Sum, 0).expect("reduce");
            });
            g.bench_function(format!("{label}/{}", kacc_bench::size_label(eta)), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
