//! Ablation benches for the design choices called out in DESIGN.md §6
//! (simulated time unless noted).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{allgather_ns, scatter_ns, timed_team};
use kacc_collectives::{scatter, AllgatherAlgo, ScatterAlgo};
use kacc_comm::{smcoll, Comm};
use kacc_model::ArchProfile;
use std::time::Duration;

fn custom(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    ns: f64,
) {
    g.bench_function(label, |b| {
        b.iter_custom(|iters| {
            // Report exact simulated time; the capped sleep
            // gives criterion's wall-clock warm-up a
            // heartbeat so iteration counts stay sane.
            let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
            std::thread::sleep(d.min(Duration::from_millis(25)));
            d
        })
    });
}

fn bench(c: &mut Criterion) {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    let eta = 1 << 20;

    // abl_throttle_sync: point-to-point chained throttling (the paper's
    // design) vs a naive barrier between waves.
    {
        let mut g = c.benchmark_group("abl_throttle_sync/KNL-1M");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let chained = scatter_ns(&arch, p, eta, ScatterAlgo::ThrottledRead { k: 8 });
        custom(&mut g, "chained-notifies", chained);
        let barriered = timed_team(&arch, p, move |comm| {
            // Same wave structure, but a full barrier after every wave.
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc(p * eta));
            let rb = comm.alloc(eta);
            let k = 8;
            let waves = (p - 1).div_ceil(k);
            for w in 0..waves {
                let lo = 1 + w * k;
                let hi = (lo + k).min(p);
                if me != 0 && me >= lo && me < hi {
                    // This wave's readers pull their slice.
                    let _ = (sb, rb);
                }
                smcoll::sm_barrier(comm).unwrap();
            }
            // The barrier-cost skeleton above isolates synchronization
            // overhead; add the actual data movement once.
            scatter(comm, ScatterAlgo::ThrottledRead { k }, sb, Some(rb), eta, 0).unwrap();
        });
        custom(&mut g, "barrier-per-wave", barriered);
        g.finish();
    }

    // abl_ring_socket: socket-aware neighbor stride vs stride 5 on the
    // two-socket Broadwell node.
    {
        let bdw = ArchProfile::broadwell();
        let bp = bdw.default_procs;
        let mut g = c.benchmark_group("abl_ring_socket/Broadwell-256K");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let near = allgather_ns(&bdw, bp, 256 << 10, AllgatherAlgo::RingNeighbor { j: 1 });
        custom(&mut g, "neighbor-1-intra-socket", near);
        let far = allgather_ns(&bdw, bp, 256 << 10, AllgatherAlgo::RingNeighbor { j: 5 });
        custom(&mut g, "neighbor-5-inter-socket", far);
        g.finish();
    }

    // abl_pin_batch: pinning batch size in the simulated CMA path.
    {
        let mut g = c.benchmark_group("abl_pin_batch/KNL-scatter-1M");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        for batch in [8usize, 64, 512] {
            let mut a = arch.clone();
            a.pin_batch_pages = batch;
            let ns = scatter_ns(&a, p, eta, ScatterAlgo::ThrottledRead { k: 8 });
            custom(&mut g, &format!("batch-{batch}"), ns);
        }
        g.finish();
    }

    // abl_gamma_mode: emergent mechanistic contention vs no contention
    // (Unit gamma ablation: zero the bounce term).
    {
        let mut g = c.benchmark_group("abl_gamma_mode/KNL-parallel-read-1M");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let ns = scatter_ns(&arch, p, eta, ScatterAlgo::ParallelRead);
        custom(&mut g, "mechanistic-bounce", ns);
        let mut flat = arch.clone();
        flat.k_bounce = 0.0;
        let ns = scatter_ns(&flat, p, eta, ScatterAlgo::ParallelRead);
        custom(&mut g, "no-bounce (gamma=c)", ns);
        g.finish();
    }

    // abl_rtscts: token pre-exchange (native collective) vs per-step
    // RTS/CTS — measured through allgather since every step pays it.
    {
        let mut g = c.benchmark_group("abl_rtscts/KNL-allgather-64K");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        let native = allgather_ns(&arch, p, 64 << 10, AllgatherAlgo::RingSourceRead);
        custom(&mut g, "native-token-exchange", native);
        let pt2pt = timed_team(&arch, p, move |comm| {
            let sb = comm.alloc(64 << 10);
            let rb = comm.alloc(p * (64 << 10));
            kacc_mpi::ptcoll::allgather(comm, sb, rb, 64 << 10, kacc_mpi::Protocol::RendezvousCma)
                .unwrap();
        });
        custom(&mut g, "pt2pt-rts-cts", pt2pt);
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
