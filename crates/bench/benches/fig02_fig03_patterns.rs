//! Figs 2–3 as Criterion benches: CMA read latency under the three
//! access patterns and across architectures (simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::measure::{one_to_all_read_ns, pairs_read_ns};
use kacc_model::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let eta = 256 << 10;
    {
        let knl = ArchProfile::knl();
        let mut g = c.benchmark_group("fig02/KNL-256K");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(200));
        for readers in [1usize, 8, 32] {
            let ns = pairs_read_ns(&knl, readers, eta);
            g.bench_function(format!("all-to-all/{readers}r"), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
            let ns = one_to_all_read_ns(&knl, readers, eta, true);
            g.bench_function(format!("one-to-all-same/{readers}r"), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
            let ns = one_to_all_read_ns(&knl, readers, eta, false);
            g.bench_function(format!("one-to-all-diff/{readers}r"), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
        }
        g.finish();
    }
    let mut g = c.benchmark_group("fig03/one-to-all-256K");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(200));
    for arch in ArchProfile::all() {
        for readers in [1usize, 16] {
            let ns = one_to_all_read_ns(&arch, readers, eta, false);
            g.bench_function(format!("{}/{readers}r", arch.name), |b| {
                b.iter_custom(|iters| {
                    // Report exact simulated time; the capped sleep
                    // gives criterion's wall-clock warm-up a
                    // heartbeat so iteration counts stay sane.
                    let d = Duration::from_secs_f64(ns * 1e-9 * iters as f64);
                    std::thread::sleep(d.min(Duration::from_millis(25)));
                    d
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
