//! Metrics overhead on the executor hot path (wall-clock).
//!
//! `kacc-metrics` is always-on: every executed step records into the
//! per-step-kind latency histogram through a pre-resolved handle (one
//! relaxed enabled-check plus a few relaxed atomic adds). This bench
//! replays the same step-dense single-rank schedule as the
//! `trace_overhead` bench on an instant-cost transport — so almost all
//! measured time *is* executor bookkeeping — and compares the default
//! enabled path against `kacc_metrics::set_enabled(false)`. The two
//! must sit within noise of each other (the PR-7 acceptance criterion:
//! enabled-but-idle within noise of the PR-6 executor).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::nullcomm::NullComm;
use kacc_collectives::exec::{execute, Bindings};
use kacc_collectives::schedule::{Schedule, Slot, Step, TokenReg};
use kacc_comm::Comm;
use std::hint::black_box;
use std::time::Duration;

/// A step-dense single-rank plan: expose once, then ping-pong a small
/// block Send → Temp → Recv `rounds` times. Small payloads keep memcpy
/// cost low relative to per-step dispatch, which is what we're measuring.
fn demo_schedule(rounds: usize, block: usize) -> Schedule {
    let mut steps = vec![Step::Expose {
        slot: Slot::Send,
        reg: TokenReg(0),
    }];
    for _ in 0..rounds {
        steps.push(Step::CopyLocal {
            src: Slot::Send,
            src_off: 0,
            dst: Slot::Temp(0),
            dst_off: 0,
            len: block,
        });
        steps.push(Step::CopyLocal {
            src: Slot::Temp(0),
            src_off: 0,
            dst: Slot::Recv,
            dst_off: 0,
            len: block,
        });
    }
    Schedule {
        p: 1,
        rank: 0,
        token_regs: 1,
        temps: vec![block],
        steps,
        class: None,
    }
}

fn bench(c: &mut Criterion) {
    let rounds = 256;
    let block = 64;
    let sched = demo_schedule(rounds, block);

    let mut comm = NullComm::new();
    let send = comm.alloc(block);
    let recv = comm.alloc(block);
    let bind = Bindings {
        send: Some(send),
        recv: Some(recv),
    };

    let mut g = c.benchmark_group("metrics_overhead/executor-513-steps");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    // Default path: metrics are on, every step records into the
    // per-kind histogram and the finish hook folds the report.
    kacc_metrics::set_enabled(true);
    g.bench_function("metrics-on", |b| {
        b.iter(|| black_box(execute(&mut comm, black_box(&sched), &bind).unwrap()))
    });

    // Gated path: same handles, but `record`/`add` return after the
    // relaxed enabled-check. The delta between these two rows is the
    // true cost of the always-on default.
    kacc_metrics::set_enabled(false);
    g.bench_function("metrics-off", |b| {
        b.iter(|| black_box(execute(&mut comm, black_box(&sched), &bind).unwrap()))
    });
    kacc_metrics::set_enabled(true);

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
