//! Plan-cache ablation (wall-clock, not simulated): compiling a
//! collective schedule from scratch vs replaying a cached plan. The
//! compile+execute split only pays off if the LRU hit path is
//! measurably cheaper than re-deriving the schedule, so this bench
//! pins that claim with a large-ish topology (p = 64 throttled-read
//! scatter, the most compile-heavy scatter variant: it emits the full
//! wave-chaining control structure).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_collectives::schedule::{compile_allgather, compile_scatter, PlanCache, PlanKey};
use kacc_collectives::{AllgatherAlgo, ScatterAlgo};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let p = 64;
    let count = 1 << 16;
    let layout: Vec<(usize, usize)> = (0..p).map(|r| (r * count, count)).collect();
    let algo = ScatterAlgo::ThrottledRead { k: 8 };
    let key = || PlanKey::Scatter {
        algo,
        p,
        rank: 0,
        counts: vec![count; p],
        displs: None,
        root: 0,
        has_recvbuf: true,
    };

    let mut g = c.benchmark_group("plan_cache/scatter-throttled-p64");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    // Cold path: full IR compilation on every call.
    g.bench_function("compile-cold", |b| {
        b.iter(|| black_box(compile_scatter(algo, p, 0, black_box(&layout), 0, true)))
    });

    // Hit path: the same logical request served from a primed cache.
    // Key construction (one counts-vector clone) is part of the lookup
    // cost by design — callers pay it on every entry.
    g.bench_function("cache-hit", |b| {
        let cache = PlanCache::new(8);
        cache.get_or_compile(key(), || compile_scatter(algo, p, 0, &layout, 0, true));
        b.iter(|| black_box(cache.get_or_compile(key(), || unreachable!("plan must be cached"))))
    });

    g.finish();

    // Recursive-doubling allgather is the compile-heavy extreme: the
    // builder simulates the global have-matrix round by round to emit
    // the per-round block snapshots, so cold compilation is O(p²·log p)
    // while the cached key is a handful of scalars.
    let ag = AllgatherAlgo::RecursiveDoubling;
    let ag_key = || PlanKey::Allgather {
        algo: ag,
        p,
        rank: 0,
        count,
        has_sendbuf: true,
    };

    let mut g = c.benchmark_group("plan_cache/allgather-rd-p64");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    g.bench_function("compile-cold", |b| {
        b.iter(|| black_box(compile_allgather(ag, p, 0, black_box(count), true)))
    });

    g.bench_function("cache-hit", |b| {
        let cache = PlanCache::new(8);
        cache.get_or_compile(ag_key(), || compile_allgather(ag, p, 0, count, true));
        b.iter(|| black_box(cache.get_or_compile(ag_key(), || unreachable!("plan must be cached"))))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
