//! Tracing overhead on the executor hot path (wall-clock).
//!
//! `kacc-trace` promises to be near-free when disabled: the executor
//! fetches the transport's tracer once and every per-step emission is
//! guarded by a single `Option` check. This bench replays one hand-built
//! schedule on an instant-cost single-rank transport — so almost all of
//! the measured time *is* executor bookkeeping — and compares the
//! disabled-tracer path against a live buffered sink. The disabled
//! number is the one the <2% overhead claim is pinned against (the
//! traced run additionally pays for event construction and buffering,
//! which is fine: enabling a sink is opt-in).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_collectives::exec::{execute, execute_traced, Bindings};
use kacc_collectives::schedule::{Schedule, Slot, Step, TokenReg};
use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use kacc_trace::Tracer;
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

/// Single-rank in-memory transport with zero-cost operations: every op
/// completes instantly, so executing a schedule on it measures executor
/// dispatch + recording, not data movement.
struct NullComm {
    bufs: HashMap<u64, Vec<u8>>,
    next: u64,
}

impl NullComm {
    fn new() -> NullComm {
        NullComm {
            bufs: HashMap::new(),
            next: 0,
        }
    }

    fn buf(&self, b: BufId) -> Result<&Vec<u8>> {
        self.bufs.get(&b.0).ok_or(CommError::InvalidBuffer(b.0))
    }
}

impl Comm for NullComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn topology(&self) -> Topology {
        Topology {
            sockets: 1,
            cores_per_socket: 1,
            threads_per_core: 1,
            page_size: 4096,
        }
    }

    fn alloc(&mut self, len: usize) -> BufId {
        let id = self.next;
        self.next += 1;
        self.bufs.insert(id, vec![0u8; len]);
        BufId(id)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.bufs
            .remove(&buf.0)
            .map(|_| ())
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        Ok(self.buf(buf)?.len())
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.buf(buf)?;
        self.bufs.get_mut(&buf.0).unwrap()[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        out.copy_from_slice(&self.buf(buf)?[off..off + out.len()]);
        Ok(())
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        let chunk = self.buf(src)?[src_off..src_off + len].to_vec();
        self.write_local(dst, dst_off, &chunk)
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        self.buf(buf)?;
        Ok(RemoteToken {
            rank: 0,
            token: buf.0,
        })
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.copy_local(BufId(token.token), remote_off, dst, dst_off, len)
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.copy_local(src, src_off, BufId(token.token), remote_off, len)
    }

    fn ctrl_send(&mut self, _to: usize, _tag: Tag, _data: &[u8]) -> Result<()> {
        unimplemented!("single-rank demo schedule has no control traffic")
    }

    fn ctrl_recv(&mut self, _from: usize, _tag: Tag) -> Result<Vec<u8>> {
        unimplemented!("single-rank demo schedule has no control traffic")
    }

    fn shm_send_data(
        &mut self,
        _to: usize,
        _tag: Tag,
        _src: BufId,
        _off: usize,
        _len: usize,
    ) -> Result<()> {
        unimplemented!("single-rank demo schedule has no shm traffic")
    }

    fn shm_recv_data(
        &mut self,
        _from: usize,
        _tag: Tag,
        _dst: BufId,
        _off: usize,
        _len: usize,
    ) -> Result<()> {
        unimplemented!("single-rank demo schedule has no shm traffic")
    }

    fn time_ns(&self) -> u64 {
        0
    }
}

/// A step-dense single-rank plan: expose once, then ping-pong a small
/// block Send → Temp → Recv `rounds` times. Small payloads keep memcpy
/// cost low relative to per-step dispatch, which is what we're measuring.
fn demo_schedule(rounds: usize, block: usize) -> Schedule {
    let mut steps = vec![Step::Expose {
        slot: Slot::Send,
        reg: TokenReg(0),
    }];
    for _ in 0..rounds {
        steps.push(Step::CopyLocal {
            src: Slot::Send,
            src_off: 0,
            dst: Slot::Temp(0),
            dst_off: 0,
            len: block,
        });
        steps.push(Step::CopyLocal {
            src: Slot::Temp(0),
            src_off: 0,
            dst: Slot::Recv,
            dst_off: 0,
            len: block,
        });
    }
    Schedule {
        p: 1,
        rank: 0,
        token_regs: 1,
        temps: vec![block],
        steps,
        class: None,
    }
}

fn bench(c: &mut Criterion) {
    let rounds = 256;
    let block = 64;
    let sched = demo_schedule(rounds, block);

    let mut comm = NullComm::new();
    let send = comm.alloc(block);
    let recv = comm.alloc(block);
    let bind = Bindings {
        send: Some(send),
        recv: Some(recv),
    };

    let mut g = c.benchmark_group("trace_overhead/executor-513-steps");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    // Disabled path: NullComm's default Comm::tracer() is Tracer::off(),
    // so each step pays one Option check. This must sit within 2% of the
    // pre-trace executor.
    g.bench_function("tracer-off", |b| {
        b.iter(|| black_box(execute(&mut comm, black_box(&sched), &bind).unwrap()))
    });

    // Enabled path: every step also builds an Event and appends it to a
    // shared buffer (drained between iterations so it can't grow without
    // bound).
    let (tracer, buffer) = Tracer::buffered();
    g.bench_function("tracer-buffered", |b| {
        b.iter(|| {
            let report = execute_traced(&mut comm, black_box(&sched), &bind, &tracer).unwrap();
            black_box(buffer.take());
            black_box(report)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
