//! Tracing overhead on the executor hot path (wall-clock).
//!
//! `kacc-trace` promises to be near-free when disabled: the executor
//! fetches the transport's tracer once and every per-step emission is
//! guarded by a single `Option` check. This bench replays one hand-built
//! schedule on an instant-cost single-rank transport — so almost all of
//! the measured time *is* executor bookkeeping — and compares the
//! disabled-tracer path against a live buffered sink. The disabled
//! number is the one the <2% overhead claim is pinned against (the
//! traced run additionally pays for event construction and buffering,
//! which is fine: enabling a sink is opt-in).

use criterion::{criterion_group, criterion_main, Criterion};
use kacc_bench::nullcomm::NullComm;
use kacc_collectives::exec::{execute, execute_traced, Bindings};
use kacc_collectives::schedule::{Schedule, Slot, Step, TokenReg};
use kacc_comm::Comm;
use kacc_trace::Tracer;
use std::hint::black_box;
use std::time::Duration;

/// A step-dense single-rank plan: expose once, then ping-pong a small
/// block Send → Temp → Recv `rounds` times. Small payloads keep memcpy
/// cost low relative to per-step dispatch, which is what we're measuring.
fn demo_schedule(rounds: usize, block: usize) -> Schedule {
    let mut steps = vec![Step::Expose {
        slot: Slot::Send,
        reg: TokenReg(0),
    }];
    for _ in 0..rounds {
        steps.push(Step::CopyLocal {
            src: Slot::Send,
            src_off: 0,
            dst: Slot::Temp(0),
            dst_off: 0,
            len: block,
        });
        steps.push(Step::CopyLocal {
            src: Slot::Temp(0),
            src_off: 0,
            dst: Slot::Recv,
            dst_off: 0,
            len: block,
        });
    }
    Schedule {
        p: 1,
        rank: 0,
        token_regs: 1,
        temps: vec![block],
        steps,
        class: None,
    }
}

fn bench(c: &mut Criterion) {
    let rounds = 256;
    let block = 64;
    let sched = demo_schedule(rounds, block);

    let mut comm = NullComm::new();
    let send = comm.alloc(block);
    let recv = comm.alloc(block);
    let bind = Bindings {
        send: Some(send),
        recv: Some(recv),
    };

    let mut g = c.benchmark_group("trace_overhead/executor-513-steps");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(500));

    // Disabled path: NullComm's default Comm::tracer() is Tracer::off(),
    // so each step pays one Option check. This must sit within 2% of the
    // pre-trace executor.
    g.bench_function("tracer-off", |b| {
        b.iter(|| black_box(execute(&mut comm, black_box(&sched), &bind).unwrap()))
    });

    // Enabled path: every step also builds an Event and appends it to a
    // shared buffer (drained between iterations so it can't grow without
    // bound).
    let (tracer, buffer) = Tracer::buffered();
    g.bench_function("tracer-buffered", |b| {
        b.iter(|| {
            let report = execute_traced(&mut comm, black_box(&sched), &bind, &tracer).unwrap();
            black_box(buffer.take());
            black_box(report)
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
