//! Error type shared by all kacc transports.

use std::fmt;

/// Errors surfaced by [`crate::Comm`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A buffer handle was invalid (never allocated or already freed).
    InvalidBuffer(u64),
    /// An offset/length pair fell outside a buffer.
    OutOfRange {
        /// Buffer the access targeted.
        buf: u64,
        /// Requested offset.
        off: usize,
        /// Requested length.
        len: usize,
        /// Actual buffer capacity.
        cap: usize,
    },
    /// A remote token referenced a rank outside the domain.
    BadRank(usize),
    /// The kernel-assisted permission check failed (e.g. the target
    /// process revoked the exposure, or ptrace scope forbids the attach).
    PermissionDenied,
    /// A kernel-assisted transfer moved fewer bytes than requested.
    Truncated {
        /// Bytes requested.
        wanted: usize,
        /// Bytes actually moved.
        got: usize,
    },
    /// A bounded wait (e.g. a control-message receive with a deadline)
    /// expired before the operation completed.
    Timeout {
        /// How long the caller waited, in nanoseconds (virtual ns on the
        /// simulated transports).
        waited_ns: u64,
    },
    /// Internal protocol violation (malformed control message, tag misuse).
    Protocol(String),
    /// Operating-system error (errno) from the real transport.
    Os(i32),
    /// The membership layer declared this peer dead: either the transport
    /// reported `ESRCH` for an operation involving it, or a liveness
    /// deadline expired while waiting on it. Carries the suspected rank
    /// (in the *parent* communicator's numbering).
    PeerDead(usize),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidBuffer(b) => write!(f, "invalid buffer handle {b}"),
            CommError::OutOfRange { buf, off, len, cap } => write!(
                f,
                "access [{off}, {off}+{len}) out of range for buffer {buf} of {cap} bytes"
            ),
            CommError::BadRank(r) => write!(f, "rank {r} outside communication domain"),
            CommError::PermissionDenied => write!(f, "kernel-assisted access permission denied"),
            CommError::Truncated { wanted, got } => {
                write!(f, "transfer truncated: wanted {wanted} bytes, moved {got}")
            }
            CommError::Timeout { waited_ns } => {
                write!(f, "operation timed out after {waited_ns} ns")
            }
            CommError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            CommError::Os(errno) => write!(f, "os error (errno {errno})"),
            CommError::PeerDead(r) => write!(f, "peer rank {r} suspected dead"),
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias for [`crate::Comm`] operations.
pub type Result<T> = std::result::Result<T, CommError>;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::OutOfRange {
            buf: 3,
            off: 10,
            len: 20,
            cap: 16,
        };
        let s = e.to_string();
        assert!(s.contains("buffer 3"));
        assert!(s.contains("16 bytes"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CommError::PermissionDenied, CommError::PermissionDenied);
        assert_ne!(CommError::BadRank(1), CommError::BadRank(2));
    }
}
