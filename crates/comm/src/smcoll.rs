//! Small-message collectives over the shared-memory control plane.
//!
//! The paper's native CMA collectives bootstrap themselves with tiny
//! shared-memory transfers: buffer addresses are broadcast or gathered
//! (one pointer per process) and completion is signalled with 0-byte
//! messages (§III). These helpers implement those `T^sm_<coll>`
//! primitives over [`Comm::ctrl_send`]/[`Comm::ctrl_recv`] using
//! logarithmic trees so their cost stays negligible next to the data
//! plane, as the model assumes.
//!
//! Every helper takes a `class` so concurrent algorithm phases can use
//! disjoint tag spaces.

use crate::{Comm, CommExt, Result, Tag};

/// Tag classes used by the helpers in this module. Public so higher
/// layers can avoid collisions when they hand-roll protocols. These are
/// re-exports from the central [`crate::tagclass`] registry, which owns
/// the uniqueness audit.
pub mod class {
    /// Binomial broadcast.
    pub const BCAST: u32 = crate::tagclass::SM_BCAST;
    /// Binomial gather.
    pub const GATHER: u32 = crate::tagclass::SM_GATHER;
    /// Bruck allgather.
    pub const ALLGATHER: u32 = crate::tagclass::SM_ALLGATHER;
    /// Dissemination barrier.
    pub const BARRIER: u32 = crate::tagclass::SM_BARRIER;
}

fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

fn unvrank(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

/// Binomial-tree broadcast of a small payload. Every rank returns the
/// root's payload. `root` supplies `data`; other ranks' `data` is ignored.
pub fn sm_bcast<C: Comm + ?Sized>(comm: &mut C, root: usize, data: &[u8]) -> Result<Vec<u8>> {
    let p = comm.size();
    let me = comm.rank();
    let tag = Tag::internal(class::BCAST, 0);
    if p == 1 {
        return Ok(data.to_vec());
    }
    let v = vrank(me, root, p);

    let payload = if v == 0 {
        data.to_vec()
    } else {
        // Parent is found by clearing our lowest set bit in virtual space.
        let parent = v & (v - 1);
        comm.ctrl_recv(unvrank(parent, root, p), tag)?
    };

    // Forward down the binomial tree: children are v | bit for each bit
    // above our lowest set bit (all bits for the root).
    let low = if v == 0 {
        usize::MAX
    } else {
        v & v.wrapping_neg()
    };
    let mut bit = 1usize;
    while bit < p {
        if bit < low {
            let child = v | bit;
            if child != v && child < p {
                comm.ctrl_send(unvrank(child, root, p), tag, &payload)?;
            }
        }
        bit <<= 1;
    }
    Ok(payload)
}

/// Binomial-tree gather of small payloads. The root receives
/// `Some(vec_of_payloads)` indexed by rank; non-roots receive `None`.
pub fn sm_gather<C: Comm + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[u8],
) -> Result<Option<Vec<Vec<u8>>>> {
    let p = comm.size();
    let me = comm.rank();
    let tag = Tag::internal(class::GATHER, 0);
    if p == 1 {
        return Ok(Some(vec![data.to_vec()]));
    }
    let v = vrank(me, root, p);

    // Accumulate payloads from our binomial subtree, keyed by real rank.
    // Wire format per entry: u32 rank, u32 len, bytes.
    let mut acc: Vec<(u32, Vec<u8>)> = vec![(me as u32, data.to_vec())];

    // Receive from children (largest subtree first mirrors the classic
    // recursive formulation; order only matters for determinism).
    let low = if v == 0 {
        usize::MAX
    } else {
        v & v.wrapping_neg()
    };
    let mut bit = 1usize;
    while bit < p {
        if bit < low {
            let child = v | bit;
            if child != v && child < p {
                let blob = comm.ctrl_recv(unvrank(child, root, p), tag)?;
                acc.extend(decode_entries(&blob)?);
            }
        }
        bit <<= 1;
    }

    if v == 0 {
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
        let mut seen = vec![false; p];
        for (r, payload) in acc {
            let r = r as usize;
            if r >= p || seen[r] {
                return Err(crate::CommError::Protocol(format!(
                    "sm_gather saw duplicate or out-of-range rank {r}"
                )));
            }
            seen[r] = true;
            out[r] = payload;
        }
        if seen.iter().all(|&s| s) {
            Ok(Some(out))
        } else {
            Err(crate::CommError::Protocol(
                "sm_gather missing contributions".into(),
            ))
        }
    } else {
        let parent = v & (v - 1);
        comm.ctrl_send(unvrank(parent, root, p), tag, &encode_entries(&acc))?;
        Ok(None)
    }
}

/// Bruck-style allgather of small payloads: every rank returns the vector
/// of all ranks' payloads, indexed by rank. Runs in ⌈log2 p⌉ rounds.
pub fn sm_allgather<C: Comm + ?Sized>(comm: &mut C, data: &[u8]) -> Result<Vec<Vec<u8>>> {
    let p = comm.size();
    let me = comm.rank();
    if p == 1 {
        return Ok(vec![data.to_vec()]);
    }

    // `have[i]` holds the payload of rank (me + i) mod p once filled.
    let mut have: Vec<Option<(u32, Vec<u8>)>> = vec![None; p];
    have[0] = Some((me as u32, data.to_vec()));
    let mut filled = 1usize;

    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let tag = Tag::internal(class::ALLGATHER, round);
        let send_to = (me + p - dist) % p;
        let recv_from = (me + dist) % p;
        // Send the first min(dist, p - filled... ) — classic Bruck sends
        // everything accumulated so far, capped so total reaches p.
        let send_count = dist.min(p - filled);
        let chunk: Vec<(u32, Vec<u8>)> = (0..send_count)
            .map(|i| have[i].clone().expect("bruck prefix is filled"))
            .collect();
        comm.ctrl_send(send_to, tag, &encode_entries(&chunk))?;
        let blob = comm.ctrl_recv(recv_from, tag)?;
        let entries = decode_entries(&blob)?;
        for (i, e) in entries.into_iter().enumerate() {
            let slot = dist + i;
            if slot < p && have[slot].is_none() {
                have[slot] = Some(e);
                filled += 1;
            }
        }
        dist <<= 1;
        round += 1;
    }

    let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
    for slot in have.into_iter().flatten() {
        out[slot.0 as usize] = slot.1;
    }
    Ok(out)
}

/// Dissemination barrier: ⌈log2 p⌉ rounds of 0-byte notifications.
pub fn sm_barrier<C: Comm + ?Sized>(comm: &mut C) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let tag = Tag::internal(class::BARRIER, round);
        comm.notify((me + dist) % p, tag)?;
        comm.wait_notify((me + p - dist) % p, tag)?;
        dist <<= 1;
        round += 1;
    }
    Ok(())
}

/// Encode `(rank, payload)` entries in the sm wire format: per entry a
/// `u32` rank (LE), `u32` length (LE), then the payload bytes. Public so
/// the compiled-schedule executor can speak the same format as
/// [`sm_gather`]/[`sm_allgather`].
pub fn encode_entries(entries: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.iter().map(|(_, d)| d.len() + 8).sum());
    for (rank, data) in entries {
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Decode the [`encode_entries`] wire format back into `(rank, payload)`
/// entries, rejecting truncated blobs.
pub fn decode_entries(blob: &[u8]) -> Result<Vec<(u32, Vec<u8>)>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < blob.len() {
        if at + 8 > blob.len() {
            return Err(crate::CommError::Protocol(
                "truncated sm entry header".into(),
            ));
        }
        let rank = u32::from_le_bytes(blob[at..at + 4].try_into().expect("slice length fixed"));
        let len = u32::from_le_bytes(blob[at + 4..at + 8].try_into().expect("slice length fixed"))
            as usize;
        at += 8;
        if at + len > blob.len() {
            return Err(crate::CommError::Protocol("truncated sm entry body".into()));
        }
        out.push((rank, blob[at..at + len].to_vec()));
        at += len;
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn entry_codec_roundtrips() {
        let entries = vec![
            (0u32, b"hello".to_vec()),
            (7u32, Vec::new()),
            (3u32, vec![9u8; 100]),
        ];
        assert_eq!(decode_entries(&encode_entries(&entries)).unwrap(), entries);
    }

    #[test]
    fn entry_codec_rejects_truncation() {
        let blob = encode_entries(&[(1, vec![1, 2, 3, 4])]);
        assert!(decode_entries(&blob[..blob.len() - 1]).is_err());
        assert!(decode_entries(&blob[..5]).is_err());
    }

    #[test]
    fn vrank_roundtrips() {
        for p in 1..20 {
            for root in 0..p {
                for r in 0..p {
                    assert_eq!(unvrank(vrank(r, root, p), root, p), r);
                }
            }
        }
    }
}
