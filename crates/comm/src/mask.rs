//! Multi-word membership bitset with an out-of-band header word.
//!
//! PR 8's membership agreement packed the dead set into a single `u64`
//! with the `REDO` flag stealing bit 63, which capped survivable
//! collectives at 63 ranks. [`MemberMask`] removes the cap: rank bits
//! live in a `Vec<u64>` sized to the communicator, and the out-of-band
//! flags (`REDO`, `NORESUME`) ride a separate *header* word that also
//! carries a nonzero magic constant.
//!
//! The nonzero magic matters for the wire format: the agreement
//! protocol deposits each member's mask into a zero-initialized receive
//! slot, so a slot that still decodes to "no magic" after the liveness
//! deadline identifies a non-responder *by content* — no side-channel
//! suspect bookkeeping (which wrapped ranks at `& 63`) is needed.
//!
//! Wire format, little-endian u64 words:
//!
//! ```text
//! word 0            header: MAGIC (high 48 bits) | flags (low 16 bits)
//! word 1..=ceil(p/64)  rank bits, bit r of word (r / 64) = rank r
//! ```
//!
//! Total `8 * (1 + ceil(p/64))` bytes per member.

/// Nonzero magic stamped into the high 48 bits of the header word.
/// ASCII "KACCMM" — any well-formed mask has a nonzero header, so an
/// all-zero wire slot is unambiguously "peer never wrote".
const MAGIC: u64 = 0x4B41_4343_4D4D_0000;
const MAGIC_MASK: u64 = !0xFFFF;
const FLAG_MASK: u64 = 0xFFFF;

/// Header flag: the collective must be re-executed (the epoch's data
/// phase was torn by a failure).
pub const FLAG_REDO: u64 = 1 << 0;

/// Header flag: at least one member cannot resume the torn plan from
/// its watermark (a completed or remaining step touched a dead rank),
/// so the epoch must fall back to full re-execution.
pub const FLAG_NORESUME: u64 = 1 << 1;

/// Growable membership bitset over ranks `0..p` plus out-of-band flags.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemberMask {
    p: usize,
    flags: u64,
    words: Vec<u64>,
}

impl MemberMask {
    /// An empty mask (no ranks set, no flags) over a domain of `p` ranks.
    pub fn new(p: usize) -> MemberMask {
        MemberMask {
            p,
            flags: 0,
            words: vec![0; p.div_ceil(64).max(1)],
        }
    }

    /// Domain size this mask was built for.
    pub fn domain(&self) -> usize {
        self.p
    }

    /// Number of u64 rank-bit words (excludes the header word).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Wire length in bytes of a mask over `p` ranks: header word plus
    /// one word per 64 ranks.
    pub fn wire_len(p: usize) -> usize {
        8 * (1 + p.div_ceil(64).max(1))
    }

    /// Set rank `r`'s bit. Panics if `r` is outside the domain.
    pub fn set(&mut self, r: usize) {
        assert!(r < self.p, "rank {r} outside mask domain {}", self.p);
        self.words[r / 64] |= 1u64 << (r % 64);
    }

    /// Clear rank `r`'s bit (no-op outside the domain).
    pub fn clear(&mut self, r: usize) {
        if r < self.p {
            self.words[r / 64] &= !(1u64 << (r % 64));
        }
    }

    /// Whether rank `r`'s bit is set (false outside the domain).
    pub fn get(&self, r: usize) -> bool {
        r < self.p && self.words[r / 64] & (1u64 << (r % 64)) != 0
    }

    /// Union the other mask's rank bits and flags into this one.
    /// Domains must match.
    pub fn union(&mut self, other: &MemberMask) {
        assert_eq!(self.p, other.p, "mask domain mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.flags |= other.flags;
    }

    /// Remove the other mask's rank bits from this one (flags untouched).
    pub fn subtract(&mut self, other: &MemberMask) {
        assert_eq!(self.p, other.p, "mask domain mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Number of rank bits set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no rank bits are set (flags may still be).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Ranks whose bits are set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.p).filter(move |&r| self.get(r))
    }

    /// Raw flag bits (low 16 bits of the header word).
    pub fn flags(&self) -> u64 {
        self.flags
    }

    /// Set a header flag ([`FLAG_REDO`], [`FLAG_NORESUME`]).
    pub fn set_flag(&mut self, f: u64) {
        self.flags |= f & FLAG_MASK;
    }

    /// Clear a header flag.
    pub fn clear_flag(&mut self, f: u64) {
        self.flags &= !f;
    }

    /// Whether a header flag is set.
    pub fn has_flag(&self, f: u64) -> bool {
        self.flags & f != 0
    }

    /// The low 64 rank bits, for diagnostics that predate multi-word
    /// masks (e.g. `MembershipReport::dead_mask`). Ranks >= 64 are not
    /// representable here; callers needing the full set use [`Self::iter`].
    pub fn low64(&self) -> u64 {
        self.words[0]
    }

    /// Serialize to the wire format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (1 + self.words.len()));
        out.extend_from_slice(&(MAGIC | self.flags).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize a mask over `p` ranks from a wire slot. Returns
    /// `None` when the header word carries no magic — in the agreement
    /// protocol that means the slot was never written (non-responder).
    pub fn from_bytes(p: usize, bytes: &[u8]) -> Option<MemberMask> {
        let want = Self::wire_len(p);
        if bytes.len() < want {
            return None;
        }
        let word = |i: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[8 * i..8 * i + 8]);
            u64::from_le_bytes(b)
        };
        let header = word(0);
        if header & MAGIC_MASK != MAGIC {
            return None;
        }
        let mut m = MemberMask::new(p);
        m.flags = header & FLAG_MASK;
        for (i, w) in m.words.iter_mut().enumerate() {
            *w = word(1 + i);
        }
        // Bits above the domain are wire noise, never membership.
        let spare = m.words.len() * 64 - p;
        if spare > 0 && spare < 64 {
            let last = m.words.len() - 1;
            m.words[last] &= u64::MAX >> spare;
        }
        Some(m)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_across_word_boundary() {
        let mut m = MemberMask::new(130);
        for r in [0, 63, 64, 127, 129] {
            assert!(!m.get(r));
            m.set(r);
            assert!(m.get(r));
        }
        assert_eq!(m.count(), 5);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 129]);
        m.clear(64);
        assert_eq!(m.count(), 4);
        assert!(!m.get(64));
    }

    #[test]
    fn wire_round_trip_preserves_bits_and_flags() {
        let mut m = MemberMask::new(200);
        m.set(5);
        m.set(77);
        m.set(199);
        m.set_flag(FLAG_REDO);
        m.set_flag(FLAG_NORESUME);
        let b = m.to_bytes();
        assert_eq!(b.len(), MemberMask::wire_len(200));
        let back = MemberMask::from_bytes(200, &b).unwrap();
        assert_eq!(back, m);
        assert!(back.has_flag(FLAG_REDO));
        assert!(back.has_flag(FLAG_NORESUME));
    }

    #[test]
    fn zero_filled_slot_decodes_as_non_responder() {
        let zeros = vec![0u8; MemberMask::wire_len(128)];
        assert!(MemberMask::from_bytes(128, &zeros).is_none());
        // Even an empty mask with no flags has a nonzero header.
        let empty = MemberMask::new(128);
        assert!(MemberMask::from_bytes(128, &empty.to_bytes()).is_some());
    }

    #[test]
    fn from_bytes_masks_out_of_domain_bits() {
        let mut wide = MemberMask::new(128);
        wide.set(100);
        let bytes = wide.to_bytes();
        // Reinterpret over a 70-rank domain: bit 100 is wire noise.
        let narrow = MemberMask::from_bytes(70, &bytes).unwrap();
        assert!(narrow.is_empty());
        assert_eq!(narrow.word_count(), 2);
    }

    #[test]
    fn union_subtract_and_low64() {
        let mut a = MemberMask::new(128);
        a.set(3);
        let mut b = MemberMask::new(128);
        b.set(100);
        b.set_flag(FLAG_REDO);
        a.union(&b);
        assert!(a.get(3) && a.get(100));
        assert!(a.has_flag(FLAG_REDO));
        assert_eq!(a.low64(), 1 << 3);
        let mut only3 = MemberMask::new(128);
        only3.set(3);
        a.subtract(&only3);
        assert!(!a.get(3) && a.get(100));
        // Flags survive subtraction.
        assert!(a.has_flag(FLAG_REDO));
    }

    #[test]
    fn wire_len_matches_formula() {
        assert_eq!(MemberMask::wire_len(1), 16);
        assert_eq!(MemberMask::wire_len(64), 16);
        assert_eq!(MemberMask::wire_len(65), 24);
        assert_eq!(MemberMask::wire_len(128), 24);
        assert_eq!(MemberMask::wire_len(129), 32);
    }
}
