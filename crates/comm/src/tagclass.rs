//! Central registry of internal [`Tag`](crate::Tag) classes.
//!
//! Every protocol family that puts messages on the control plane owns one
//! class (the `class` argument of [`Tag::internal`](crate::Tag::internal)),
//! so concurrent phases of different collectives can never steal each
//! other's messages. Historically these constants were scattered across
//! `smcoll` and `kacc-collectives`; they live here so a single unit test
//! can prove they are pairwise distinct.
//!
//! Classes 1–15 are reserved for the small-message bootstrap primitives
//! (`smcoll`), 16+ for the bulk-data collective protocols.

/// Small-message binomial broadcast (`smcoll::sm_bcast`).
pub const SM_BCAST: u32 = 1;
/// Small-message binomial gather (`smcoll::sm_gather`).
pub const SM_GATHER: u32 = 2;
/// Small-message Bruck allgather (`smcoll::sm_allgather`).
pub const SM_ALLGATHER: u32 = 3;
/// Small-message dissemination barrier (`smcoll::sm_barrier`).
pub const SM_BARRIER: u32 = 4;

/// Bulk Scatter protocols (§IV-A).
pub const SCATTER: u32 = 16;
/// Bulk Gather protocols (§IV-B).
pub const GATHER: u32 = 17;
/// Bulk Alltoall protocols (§IV-C).
pub const ALLTOALL: u32 = 18;
/// Bulk Allgather protocols (§V-A).
pub const ALLGATHER: u32 = 19;
/// Bulk Broadcast protocols (§V-B).
pub const BCAST: u32 = 20;
/// Two-level hierarchical collectives (§VII-G).
pub const HIER: u32 = 21;
/// Reduction collectives.
pub const REDUCE: u32 = 22;
/// Membership agreement rounds (survivable collectives).
pub const MEMBERSHIP: u32 = 23;

/// Every registered class with its owner, for the uniqueness audit.
pub const ALL: &[(u32, &str)] = &[
    (SM_BCAST, "smcoll::sm_bcast"),
    (SM_GATHER, "smcoll::sm_gather"),
    (SM_ALLGATHER, "smcoll::sm_allgather"),
    (SM_BARRIER, "smcoll::sm_barrier"),
    (SCATTER, "collectives::scatter"),
    (GATHER, "collectives::gather"),
    (ALLTOALL, "collectives::alltoall"),
    (ALLGATHER, "collectives::allgather"),
    (BCAST, "collectives::bcast"),
    (HIER, "collectives::hierarchical"),
    (REDUCE, "collectives::reduce"),
    (MEMBERSHIP, "collectives::membership"),
];

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::ALL;

    #[test]
    fn no_two_protocols_share_a_class() {
        for (i, &(ca, na)) in ALL.iter().enumerate() {
            for &(cb, nb) in &ALL[i + 1..] {
                assert_ne!(ca, cb, "{na} and {nb} share tag class {ca}");
            }
        }
    }

    #[test]
    fn classes_fit_the_internal_tag_encoding() {
        // Tag::internal packs `class * 0x1_0000 + sub` above USER_MAX;
        // sub-tags go up to 0xFFFF, so classes must stay distinct at
        // the 16-bit boundary (trivially true while they are small).
        for &(c, _) in ALL {
            assert!(c > 0 && c < 0x1000, "class {c} out of sane range");
        }
    }
}
