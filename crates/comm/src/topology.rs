//! Node topology: sockets, cores, SMT, page size, and the
//! process-to-core mapping used to classify transfers as intra- or
//! inter-socket.

/// Physical layout of one node.
///
/// Ranks map to hardware threads in rank order: rank `r` runs on logical
/// CPU `r mod (sockets * cores_per_socket * threads_per_core)`, and logical
/// CPUs fill socket 0's cores first, then socket 1's, and wrap onto SMT
/// siblings afterwards. This matches the "by core" binding MPI launchers
/// use by default and is what makes a Ring-Neighbor-1 allgather mostly
/// intra-socket on a two-socket machine (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (SMT ways).
    pub threads_per_core: usize,
    /// Base page size in bytes (4 KiB on x86, 64 KiB on Power8 Linux).
    pub page_size: usize,
}

impl Topology {
    /// A topology for tests: one socket, `cores` cores, 4 KiB pages.
    pub fn flat(cores: usize) -> Topology {
        Topology {
            sockets: 1,
            cores_per_socket: cores,
            threads_per_core: 1,
            page_size: 4096,
        }
    }

    /// Total physical cores on the node.
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads (the full-subscription process count).
    pub fn hardware_threads(&self) -> usize {
        self.physical_cores() * self.threads_per_core
    }

    /// Socket hosting `rank` under the default by-core mapping.
    pub fn socket_of(&self, rank: usize) -> usize {
        let hw = rank % self.hardware_threads();
        // Hardware threads are numbered core-major: logical CPU = smt_way *
        // physical_cores + core, so dividing out the SMT way first recovers
        // the physical core index.
        let core = hw % self.physical_cores();
        core / self.cores_per_socket
    }

    /// True when two ranks share a socket.
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// Number of pages needed to back `bytes` (Table II's ⌈η/s⌉ term).
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_size)
    }

    /// True if the set of ranks `ranks` spans more than one socket.
    pub fn spans_sockets<I: IntoIterator<Item = usize>>(&self, ranks: I) -> bool {
        let mut seen: Option<usize> = None;
        for r in ranks {
            let s = self.socket_of(r);
            match seen {
                None => seen = Some(s),
                Some(prev) if prev != s => return true,
                Some(_) => {}
            }
        }
        false
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn broadwell() -> Topology {
        Topology {
            sockets: 2,
            cores_per_socket: 14,
            threads_per_core: 1,
            page_size: 4096,
        }
    }

    fn power8() -> Topology {
        Topology {
            sockets: 2,
            cores_per_socket: 10,
            threads_per_core: 8,
            page_size: 65536,
        }
    }

    #[test]
    fn socket_mapping_fills_socket_zero_first() {
        let t = broadwell();
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(13), 0);
        assert_eq!(t.socket_of(14), 1);
        assert_eq!(t.socket_of(27), 1);
    }

    #[test]
    fn smt_wraps_back_to_socket_zero() {
        let t = power8();
        // 20 physical cores; rank 20 is the first SMT sibling and lands
        // back on socket 0 core 0.
        assert_eq!(t.socket_of(20), 0);
        assert_eq!(t.socket_of(30), 1);
        assert_eq!(t.hardware_threads(), 160);
        // rank 160 wraps entirely.
        assert_eq!(t.socket_of(160), t.socket_of(0));
    }

    #[test]
    fn pages_round_up() {
        let t = broadwell();
        assert_eq!(t.pages_for(1), 1);
        assert_eq!(t.pages_for(4096), 1);
        assert_eq!(t.pages_for(4097), 2);
        let p8 = power8();
        assert_eq!(p8.pages_for(65536), 1);
        assert_eq!(p8.pages_for(65537), 2);
    }

    #[test]
    fn spans_sockets_detects_cross_socket_sets() {
        let t = broadwell();
        assert!(!t.spans_sockets([0, 1, 13]));
        assert!(t.spans_sockets([0, 14]));
        assert!(!t.spans_sockets(std::iter::empty()));
    }

    #[test]
    fn neighbor_distance_socket_locality() {
        // The paper's Broadwell observation: rank -> rank+1 is mostly
        // intra-socket, rank -> rank+5 much less so near the boundary.
        let t = broadwell();
        let p = 28;
        let intra_1 = (0..p).filter(|&r| t.same_socket(r, (r + 1) % p)).count();
        let intra_5 = (0..p).filter(|&r| t.same_socket(r, (r + 5) % p)).count();
        assert!(intra_1 > intra_5);
    }
}
