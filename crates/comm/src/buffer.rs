//! Buffer handles and remote-access tokens.

/// Handle to a data buffer owned by one endpoint.
///
/// Handles are endpoint-scoped: a `BufId` minted by rank 3's endpoint means
/// nothing to rank 5. To grant peers single-copy access, call
/// [`crate::Comm::expose`] and ship the resulting [`RemoteToken`] over the
/// control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u64);

/// Capability for single-copy access to a peer's exposed buffer.
///
/// This is the abstract analogue of the `(pid, address)` pair a real CMA
/// transfer needs: `rank` identifies the owning process and `token` its
/// registered region. Tokens serialize to a fixed 16-byte wire format so
/// collectives can broadcast/gather them with the small-message plane —
/// exactly the "exchange buffer addresses through shared memory" step the
/// paper describes in §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteToken {
    /// Rank owning the exposed buffer.
    pub rank: u64,
    /// Transport-specific region identifier (simulator buffer id, or the
    /// remote virtual address on the native transport).
    pub token: u64,
}

impl RemoteToken {
    /// Wire size of a serialized token.
    pub const WIRE_LEN: usize = 16;

    /// Serialize to the 16-byte wire format (little-endian).
    pub fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.rank.to_le_bytes());
        out[8..].copy_from_slice(&self.token.to_le_bytes());
        out
    }

    /// Deserialize from the wire format. Returns `None` on short input.
    pub fn from_bytes(bytes: &[u8]) -> Option<RemoteToken> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let rank = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let token = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        Some(RemoteToken { rank, token })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips() {
        let t = RemoteToken {
            rank: 0xDEAD_BEEF,
            token: u64::MAX - 7,
        };
        assert_eq!(RemoteToken::from_bytes(&t.to_bytes()), Some(t));
    }

    #[test]
    fn token_rejects_short_input() {
        assert_eq!(RemoteToken::from_bytes(&[0u8; 15]), None);
    }

    #[test]
    fn token_wire_format_is_little_endian() {
        let t = RemoteToken { rank: 1, token: 2 };
        let b = t.to_bytes();
        assert_eq!(b[0], 1);
        assert_eq!(b[8], 2);
    }
}
