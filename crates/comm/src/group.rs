//! Sub-communicators: run collectives over a subset of ranks.
//!
//! [`SubComm`] re-ranks a member subset of a parent [`Comm`] the way
//! `MPI_Comm_split` does. Disjoint subgroups can run collectives
//! *concurrently* without tag collisions because control-plane matching
//! is keyed by source rank, and disjoint groups have disjoint sources.
//!
//! Buffer handles and remote tokens pass straight through to the parent
//! transport (tokens already carry the owner's parent rank), so
//! kernel-assisted operations work unchanged.

use crate::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};

/// Validate a member list against a parent domain of `p` ranks: the list
/// must be non-empty, in-range, duplicate-free, and contain the calling
/// endpoint `me`. Returns `me`'s index within the list (its subgroup
/// rank). Shared by [`SubComm::new`] and the membership layer's
/// shrink-and-re-execute path, so both agree on what a legal survivor
/// set is.
pub fn validate_members(p: usize, me: usize, members: &[usize]) -> Result<usize> {
    if members.is_empty() {
        return Err(CommError::Protocol("empty subgroup".into()));
    }
    if members.iter().any(|&m| m >= p) {
        return Err(CommError::Protocol("subgroup member outside parent".into()));
    }
    let mut seen = members.to_vec();
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(CommError::Protocol("duplicate subgroup member".into()));
    }
    members
        .iter()
        .position(|&m| m == me)
        .ok_or(CommError::Protocol(
            "caller is not a subgroup member".into(),
        ))
}

/// A re-ranked view over a subset of a parent communicator's ranks.
pub struct SubComm<'a, C: Comm + ?Sized> {
    parent: &'a mut C,
    /// Parent ranks of the members, in subgroup rank order.
    members: Vec<usize>,
    /// This endpoint's rank within the subgroup.
    my_rank: usize,
}

impl<'a, C: Comm + ?Sized> SubComm<'a, C> {
    /// View `parent` as a communicator over `members` (parent ranks,
    /// already ordered). The calling endpoint's parent rank must be a
    /// member. Membership must be identical on every member.
    pub fn new(parent: &'a mut C, members: Vec<usize>) -> Result<SubComm<'a, C>> {
        let my_rank = validate_members(parent.size(), parent.rank(), &members)?;
        Ok(SubComm {
            parent,
            members,
            my_rank,
        })
    }

    /// Split by color/key, like `MPI_Comm_split`: every parent rank
    /// supplies a `(color, key)`; ranks sharing this endpoint's color
    /// form the subgroup, ordered by `(key, parent rank)`. Collective
    /// over the parent (everyone must call it).
    pub fn split(parent: &'a mut C, color: u64, key: u64) -> Result<SubComm<'a, C>> {
        let mut payload = color.to_le_bytes().to_vec();
        payload.extend_from_slice(&key.to_le_bytes());
        let all = crate::smcoll::sm_allgather(parent, &payload)?;
        let mut mine: Vec<(u64, usize)> = Vec::new();
        for (r, blob) in all.iter().enumerate() {
            if blob.len() != 16 {
                return Err(CommError::Protocol("bad split payload".into()));
            }
            let c = u64::from_le_bytes(blob[..8].try_into().expect("slice length fixed"));
            let k = u64::from_le_bytes(blob[8..].try_into().expect("slice length fixed"));
            if c == color {
                mine.push((k, r));
            }
        }
        mine.sort_unstable();
        SubComm::new(parent, mine.into_iter().map(|(_, r)| r).collect())
    }

    /// Parent rank of subgroup rank `r`.
    pub fn parent_rank(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The member list (parent ranks, subgroup order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Borrow the parent communicator (e.g. for inter-group traffic
    /// between phases).
    pub fn parent(&mut self) -> &mut C {
        self.parent
    }
}

impl<C: Comm + ?Sized> Comm for SubComm<'_, C> {
    fn rank(&self) -> usize {
        self.my_rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn topology(&self) -> Topology {
        // Socket classifications remain exact when the subgroup is a
        // contiguous block of parent ranks (the node-subgroup case);
        // otherwise they are approximations.
        self.parent.topology()
    }

    fn node_of(&self, rank: usize) -> usize {
        self.parent.node_of(self.members[rank])
    }

    fn alloc(&mut self, len: usize) -> BufId {
        self.parent.alloc(len)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.parent.free(buf)
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        self.parent.buf_len(buf)
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.parent.write_local(buf, off, data)
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.parent.read_local(buf, off, out)
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.parent.copy_local(src, src_off, dst, dst_off, len)
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        // Tokens carry the *parent* rank; cma ops translate nothing.
        self.parent.expose(buf)
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.parent.cma_read(token, remote_off, dst, dst_off, len)
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.parent.cma_write(token, remote_off, src, src_off, len)
    }

    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        let to = *self.members.get(to).ok_or(CommError::BadRank(to))?;
        self.parent.ctrl_send(to, tag, data)
    }

    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        let from = *self.members.get(from).ok_or(CommError::BadRank(from))?;
        self.parent.ctrl_recv(from, tag)
    }

    fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        let from = *self.members.get(from).ok_or(CommError::BadRank(from))?;
        self.parent.ctrl_recv_deadline(from, tag, timeout_ns)
    }

    fn sleep_ns(&mut self, ns: u64) {
        self.parent.sleep_ns(ns);
    }

    fn shm_fallback_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        // Tokens carry parent ranks; nothing to translate.
        self.parent
            .shm_fallback_read(token, remote_off, dst, dst_off, len)
    }

    fn shm_fallback_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.parent
            .shm_fallback_write(token, remote_off, src, src_off, len)
    }

    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        let to = *self.members.get(to).ok_or(CommError::BadRank(to))?;
        self.parent.shm_send_data(to, tag, src, off, len)
    }

    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        let from = *self.members.get(from).ok_or(CommError::BadRank(from))?;
        self.parent.shm_recv_data(from, tag, dst, off, len)
    }

    fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        let from = *self.members.get(from).ok_or(CommError::BadRank(from))?;
        self.parent
            .shm_recv_deadline(from, tag, dst, off, len, timeout_ns)
    }

    fn time_ns(&self) -> u64 {
        self.parent.time_ns()
    }

    fn tracer(&self) -> kacc_trace::Tracer {
        self.parent.tracer()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    // A minimal in-memory Comm for membership validation tests (the
    // full transports exercise SubComm in integration tests).
    struct StubComm {
        rank: usize,
        size: usize,
    }

    impl Comm for StubComm {
        fn rank(&self) -> usize {
            self.rank
        }
        fn size(&self) -> usize {
            self.size
        }
        fn topology(&self) -> Topology {
            Topology::flat(self.size)
        }
        fn alloc(&mut self, _len: usize) -> BufId {
            BufId(0)
        }
        fn free(&mut self, _buf: BufId) -> Result<()> {
            Ok(())
        }
        fn buf_len(&self, _buf: BufId) -> Result<usize> {
            Ok(0)
        }
        fn write_local(&mut self, _b: BufId, _o: usize, _d: &[u8]) -> Result<()> {
            Ok(())
        }
        fn read_local(&self, _b: BufId, _o: usize, _out: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn copy_local(
            &mut self,
            _s: BufId,
            _so: usize,
            _d: BufId,
            _do: usize,
            _l: usize,
        ) -> Result<()> {
            Ok(())
        }
        fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
            Ok(RemoteToken {
                rank: self.rank as u64,
                token: buf.0,
            })
        }
        fn cma_read(
            &mut self,
            _t: RemoteToken,
            _ro: usize,
            _d: BufId,
            _do: usize,
            _l: usize,
        ) -> Result<()> {
            Ok(())
        }
        fn cma_write(
            &mut self,
            _t: RemoteToken,
            _ro: usize,
            _s: BufId,
            _so: usize,
            _l: usize,
        ) -> Result<()> {
            Ok(())
        }
        fn ctrl_send(&mut self, _to: usize, _tag: Tag, _d: &[u8]) -> Result<()> {
            Ok(())
        }
        fn ctrl_recv(&mut self, _from: usize, _tag: Tag) -> Result<Vec<u8>> {
            Ok(Vec::new())
        }
        fn shm_send_data(
            &mut self,
            _to: usize,
            _tag: Tag,
            _s: BufId,
            _o: usize,
            _l: usize,
        ) -> Result<()> {
            Ok(())
        }
        fn shm_recv_data(
            &mut self,
            _f: usize,
            _tag: Tag,
            _d: BufId,
            _o: usize,
            _l: usize,
        ) -> Result<()> {
            Ok(())
        }
        fn time_ns(&self) -> u64 {
            0
        }
    }

    #[test]
    fn membership_is_validated() {
        let mut c = StubComm { rank: 2, size: 8 };
        assert!(SubComm::new(&mut c, vec![]).is_err());
        assert!(SubComm::new(&mut c, vec![0, 9]).is_err(), "out of range");
        assert!(SubComm::new(&mut c, vec![0, 0, 2]).is_err(), "duplicate");
        assert!(
            SubComm::new(&mut c, vec![0, 1]).is_err(),
            "caller not a member"
        );
        let sub = SubComm::new(&mut c, vec![4, 2, 7]).unwrap();
        assert_eq!(sub.rank(), 1);
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.parent_rank(0), 4);
        assert_eq!(sub.parent_rank(2), 7);
    }

    #[test]
    fn validate_members_returns_subgroup_rank() {
        assert_eq!(validate_members(8, 2, &[4, 2, 7]), Ok(1));
        assert_eq!(validate_members(8, 7, &[4, 2, 7]), Ok(2));
        assert!(validate_members(8, 0, &[]).is_err());
        assert!(validate_members(8, 0, &[0, 8]).is_err());
        assert!(validate_members(8, 0, &[0, 1, 1]).is_err());
        assert!(validate_members(8, 3, &[0, 1]).is_err());
    }

    #[test]
    fn rank_translation_bounds_checked() {
        let mut c = StubComm { rank: 0, size: 4 };
        let mut sub = SubComm::new(&mut c, vec![0, 3]).unwrap();
        assert!(sub.ctrl_send(1, Tag::user(0), &[]).is_ok());
        assert_eq!(
            sub.ctrl_send(2, Tag::user(0), &[]),
            Err(CommError::BadRank(2))
        );
        assert_eq!(sub.ctrl_recv(5, Tag::user(0)), Err(CommError::BadRank(5)));
    }
}
