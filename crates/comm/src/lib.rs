#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Foundation types for kacc: the [`Comm`] endpoint trait, buffer handles,
//! node topology, and small-message shared-memory collectives.
//!
//! A [`Comm`] is one rank's endpoint into an intra-node communication
//! domain. Collective algorithms (in `kacc-collectives`) are written once
//! against this trait and run unchanged on:
//!
//! * the deterministic machine simulator (`kacc-machine::SimComm`), which
//!   charges virtual time according to a mechanistic contention model,
//! * the real Linux transport (`kacc-native::NativeComm`), which issues
//!   actual `process_vm_readv`/`process_vm_writev` syscalls between forked
//!   processes, and
//! * an in-process thread transport (`kacc-native::ThreadComm`) for
//!   portable functional tests.
//!
//! The data plane mirrors what a native CMA collective needs: processes
//! allocate buffers, *expose* them to peers as [`RemoteToken`]s (the
//! moral equivalent of a `(pid, address)` pair), exchange those tokens
//! over the small-message control plane, and then move bulk data with
//! single-copy [`Comm::cma_read`] / [`Comm::cma_write`] operations or
//! two-copy [`Comm::shm_send_data`] / [`Comm::shm_recv_data`] transfers.

pub mod buffer;
pub mod error;
pub mod group;
pub mod mask;
pub mod smcoll;
pub mod tagclass;
pub mod topology;

pub use buffer::{BufId, RemoteToken};
pub use error::{CommError, Result};
pub use group::{validate_members, SubComm};
pub use mask::MemberMask;
pub use topology::Topology;

/// Message tag for control-plane matching. Matching is FIFO per
/// `(source, tag)` pair, like MPI with a fixed communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// Tags below this value are free for application use; the collective
    /// implementations use tags at or above it.
    pub const USER_MAX: u32 = 0x1000_0000;

    /// An application-level tag (asserts it stays out of the reserved range).
    pub fn user(t: u32) -> Tag {
        assert!(
            t < Self::USER_MAX,
            "tag {t:#x} collides with reserved range"
        );
        Tag(t)
    }

    /// A tag reserved for internal protocol use. `class` selects a protocol
    /// family (each collective algorithm uses its own class).
    pub const fn internal(class: u32, sub: u32) -> Tag {
        Tag(Self::USER_MAX + class * 0x1_0000 + sub)
    }

    /// Protocol class of an internal tag (inverse of [`Tag::internal`]), or
    /// `None` for application tags. Drives per-collective attribution in
    /// trace events.
    pub const fn class(self) -> Option<u32> {
        if self.0 >= Self::USER_MAX {
            Some((self.0 - Self::USER_MAX) >> 16)
        } else {
            None
        }
    }
}

/// One rank's endpoint into an intra-node communication domain.
///
/// All operations are blocking. Control-plane sends (`ctrl_send`) are
/// buffered and never block, which keeps arbitrary collective exchange
/// patterns deadlock-free; everything else blocks until the data movement
/// it represents has completed.
pub trait Comm {
    /// This endpoint's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the domain.
    fn size(&self) -> usize;

    /// Topology of the node this domain lives on.
    fn topology(&self) -> Topology;

    /// Which node hosts `rank`. Intra-node domains return 0 for everyone;
    /// cluster domains (kacc-netsim) partition ranks across nodes.
    /// Kernel-assisted ops only work between ranks on the same node.
    fn node_of(&self, rank: usize) -> usize {
        let _ = rank;
        0
    }

    /// Allocate a data buffer of `len` bytes, zero-initialized.
    fn alloc(&mut self, len: usize) -> BufId;

    /// Release a buffer. Outstanding remote tokens for it become invalid.
    fn free(&mut self, buf: BufId) -> Result<()>;

    /// Length of a buffer.
    fn buf_len(&self, buf: BufId) -> Result<usize>;

    /// Store bytes into a local buffer. This is a test/setup convenience
    /// and is *not* charged as communication time.
    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()>;

    /// Load bytes from a local buffer. Not charged as communication time.
    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()>;

    /// `memcpy` between two local buffers, charged at local copy cost.
    /// Used for `MPI_IN_PLACE`-style root copies and Bruck shifts.
    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()>;

    /// Expose a buffer for single-copy access by peers. The returned token
    /// can be serialized into a control message with
    /// [`RemoteToken::to_bytes`].
    fn expose(&mut self, buf: BufId) -> Result<RemoteToken>;

    /// Single-copy read from a peer's exposed buffer into a local buffer
    /// (the moral equivalent of `process_vm_readv`). Blocks for the full
    /// syscall + permission check + page lock/pin + copy cost.
    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()>;

    /// Single-copy write into a peer's exposed buffer from a local buffer
    /// (the moral equivalent of `process_vm_writev`).
    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()>;

    /// Buffered small-message send on the shared-memory control plane.
    /// Never blocks. Intended for addresses, notifications and
    /// synchronization (RTS/CTS, 0-byte messages).
    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()>;

    /// Blocking receive of the next control message from `(from, tag)`.
    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>>;

    /// Bounded receive: like [`Comm::ctrl_recv`] but gives up after
    /// `timeout_ns` nanoseconds and returns `Ok(None)`. The executor's
    /// step-timeout recovery uses this to turn a silent hang (lost control
    /// message, dead peer) into a typed [`CommError::Timeout`].
    ///
    /// The default ignores the deadline and blocks — correct for
    /// transports without timed waits, where recovery then degrades to
    /// unbounded blocking exactly as before this method existed.
    fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        let _ = timeout_ns;
        self.ctrl_recv(from, tag).map(Some)
    }

    /// Sleep for `ns` nanoseconds on this transport's clock: virtual time
    /// under simulation, wall-clock on real transports. Used for retry
    /// backoff so recovery charges time the same way the transport does.
    fn sleep_ns(&mut self, ns: u64) {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }

    /// Two-copy shared-memory bulk send: copies `len` bytes from the local
    /// buffer into a shared staging area (first copy) and posts a
    /// descriptor. Blocks only for the sender-side copy.
    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()>;

    /// Two-copy shared-memory bulk receive: waits for the matching
    /// descriptor, then copies out of staging into the local buffer
    /// (second copy).
    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()>;

    /// Bounded bulk receive: like [`Comm::shm_recv_data`] but gives up
    /// after `timeout_ns` nanoseconds and returns `Ok(false)` (the
    /// destination range is then unspecified and the message, if it
    /// arrives later, remains claimable by a retry). Returns `Ok(true)`
    /// once the payload has been copied out. The default ignores the
    /// deadline and blocks, mirroring [`Comm::ctrl_recv_deadline`].
    fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        let _ = timeout_ns;
        self.shm_recv_data(from, tag, dst, off, len).map(|()| true)
    }

    /// Two-copy fallback read from a peer's exposed buffer, used when the
    /// single-copy CMA path persistently fails (permission revoked, ptrace
    /// scope). Same addressing as [`Comm::cma_read`] but staged through
    /// shared memory, so it works without kernel-assisted access. Costs
    /// two copies instead of one.
    ///
    /// The default reports the fallback as unsupported; transports that
    /// can stage through shared memory override it.
    fn shm_fallback_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        let _ = (token, remote_off, dst, dst_off, len);
        Err(CommError::Protocol(
            "two-copy fallback not supported by this transport".to_string(),
        ))
    }

    /// Two-copy fallback write into a peer's exposed buffer; the write
    /// counterpart of [`Comm::shm_fallback_read`].
    fn shm_fallback_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        let _ = (token, remote_off, src, src_off, len);
        Err(CommError::Protocol(
            "two-copy fallback not supported by this transport".to_string(),
        ))
    }

    /// Monotone time in nanoseconds: virtual time under simulation, a
    /// monotonic clock on real transports.
    fn time_ns(&self) -> u64;

    /// The tracer receiving this transport's structured events. Layers
    /// above the transport (e.g. the schedule executor) emit their spans
    /// here so one traced run carries every layer's events. Defaults to
    /// the disabled tracer; transports with a live sink override it.
    fn tracer(&self) -> kacc_trace::Tracer {
        kacc_trace::Tracer::off()
    }
}

/// Convenience extension methods shared by every [`Comm`] implementation.
pub trait CommExt: Comm {
    /// Allocate a buffer holding `data`.
    fn alloc_with(&mut self, data: &[u8]) -> BufId {
        let b = self.alloc(data.len());
        self.write_local(b, 0, data)
            .expect("fresh buffer accepts write");
        b
    }

    /// Read an entire buffer out as a vector (test convenience).
    fn read_all(&self, buf: BufId) -> Result<Vec<u8>> {
        let len = self.buf_len(buf)?;
        let mut out = vec![0u8; len];
        self.read_local(buf, 0, &mut out)?;
        Ok(out)
    }

    /// Send a 0-byte notification.
    fn notify(&mut self, to: usize, tag: Tag) -> Result<()> {
        self.ctrl_send(to, tag, &[])
    }

    /// Wait for a 0-byte notification.
    fn wait_notify(&mut self, from: usize, tag: Tag) -> Result<()> {
        let msg = self.ctrl_recv(from, tag)?;
        if msg.is_empty() {
            Ok(())
        } else {
            Err(CommError::Protocol(format!(
                "expected 0-byte notification from rank {from}, got {} bytes",
                msg.len()
            )))
        }
    }

    /// True if `self.rank()` and `other` share a CPU socket under the
    /// domain's process-to-core mapping.
    fn same_socket(&self, other: usize) -> bool {
        let t = self.topology();
        t.socket_of(self.rank()) == t.socket_of(other)
    }
}

impl<C: Comm + ?Sized> CommExt for C {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn tag_user_range_is_disjoint_from_internal() {
        let u = Tag::user(Tag::USER_MAX - 1);
        let i = Tag::internal(0, 0);
        assert!(u.0 < i.0);
    }

    #[test]
    fn tag_internal_classes_do_not_collide() {
        let a = Tag::internal(1, 0xFFFF);
        let b = Tag::internal(2, 0);
        assert!(a.0 < b.0);
    }

    #[test]
    fn tag_class_round_trips() {
        assert_eq!(Tag::internal(17, 2).class(), Some(17));
        assert_eq!(Tag::internal(0, 0xFFFF).class(), Some(0));
        assert_eq!(Tag::user(5).class(), None);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn tag_user_rejects_reserved_range() {
        let _ = Tag::user(Tag::USER_MAX);
    }
}
