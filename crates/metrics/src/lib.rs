//! Always-on, near-zero-overhead metrics for the kacc workspace.
//!
//! Three primitives, all built from commutative atomic updates so that
//! concurrent recording under any thread interleaving (`repro --jobs N`)
//! produces bitwise-identical snapshots:
//!
//! * [`Counter`] — monotonic `u64` (`fetch_add`).
//! * [`Gauge`] — high-water-mark gauge (`fetch_max`); only the maximum
//!   ever observed is kept, because a "current value" gauge would be
//!   interleaving-dependent.
//! * [`Hist`] — log₂-bucketed histogram of `u64` samples (virtual-ns
//!   latencies, sizes, queue depths). Per-bucket counts, the sample sum
//!   and the sample max are all commutative, so merging shards in any
//!   order yields the same result exactly — no floating point anywhere.
//!
//! [`LocalHist`] is the plain-field twin of [`Hist`] for per-run hot
//! paths: record into unshared memory, then [`Hist::merge_local`] once at
//! the end (one `fetch_add` per touched bucket).
//!
//! ## Registry and determinism contract
//!
//! Handles come from the process-global registry ([`counter`], [`gauge`],
//! [`hist`]), keyed by name, created on first use. Snapshots
//! ([`snapshot`]) iterate the registry in name order, so the rendered
//! JSON/Prometheus output is schema-stable no matter which code path
//! registered its metrics first. A snapshot is deterministic iff every
//! recorded value is deterministic — record virtual time and counts, never
//! wall-clock.
//!
//! ## Relation to `kacc-trace`
//!
//! `kacc-trace` answers "what happened, when" (opt-in, per-event); this
//! crate answers "how much, how often" (always-on, aggregated). Both use
//! the same gating idiom: recording is a relaxed load + branch when
//! disabled via [`set_enabled`], and the default is **on** — the
//! aggregation itself is cheap enough to leave running everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of histogram buckets: bucket 0 holds the value 0; bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`; bucket 64 tops out at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// Bucket index for a sample value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is recording enabled? Metrics are always-on by default; recording
/// while disabled is a relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Globally enable or disable recording. Registered metrics keep their
/// accumulated values; only future records are gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// High-water-mark gauge handle: keeps the maximum value ever observed.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raise the high-water mark to at least `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Relaxed);
        }
    }

    /// Current high-water mark.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new() -> HistCells {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Shared log₂-bucketed histogram handle.
#[derive(Debug, Clone)]
pub struct Hist(Arc<HistCells>);

impl Hist {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.0.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            self.0.sum.fetch_add(v, Relaxed);
            self.0.max.fetch_max(v, Relaxed);
        }
    }

    /// Fold a per-run [`LocalHist`] in: one `fetch_add` per touched
    /// bucket, commutative with any concurrent merge.
    pub fn merge_local(&self, local: &LocalHist) {
        if !enabled() || local.count == 0 {
            return;
        }
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.0.buckets[i].fetch_add(n, Relaxed);
            }
        }
        self.0.sum.fetch_add(local.sum, Relaxed);
        self.0.max.fetch_max(local.max, Relaxed);
    }

    /// Snapshot this histogram's current contents.
    pub fn load(&self) -> LocalHist {
        let mut out = LocalHist::default();
        for (i, b) in self.0.buckets.iter().enumerate() {
            out.buckets[i] = b.load(Relaxed);
            out.count += out.buckets[i];
        }
        out.sum = self.0.sum.load(Relaxed);
        out.max = self.0.max.load(Relaxed);
        out
    }
}

/// Plain-field histogram for single-owner hot paths; merge into a shared
/// [`Hist`] (or another `LocalHist`) when done. `PartialEq` compares every
/// bucket, so determinism suites can pin whole distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHist {
    fn default() -> LocalHist {
        LocalHist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LocalHist {
    /// Record one sample. The sum wraps at `u64::MAX` (matching the
    /// shared [`Hist`]'s atomic adds), which stays exact and
    /// order-invariant modulo 2⁶⁴.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another local histogram in (exact, order-invariant).
    pub fn merge(&mut self, other: &LocalHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile (q in
    /// parts-per-million, e.g. 990_000 for p99), capped at [`Self::max`]
    /// so an outlier-free distribution never over-reports. Returns 0
    /// when empty. Bucket resolution (powers of two) makes this a
    /// conservative estimate, which is exactly what a liveness deadline
    /// wants: never below the true quantile, at most 2x above it.
    pub fn quantile_bound(&self, q_ppm: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Smallest bucket whose cumulative count covers the quantile.
        let need = (self.count.saturating_mul(q_ppm)).div_ceil(1_000_000);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= need {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Hist),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "hist",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn get_or_create(name: &str, make: impl FnOnce() -> Metric) -> Metric {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(m) = map.get(name) {
        return m.clone();
    }
    let m = make();
    map.insert(name.to_string(), m.clone());
    m
}

/// Get or create the named global counter.
pub fn counter(name: &str) -> Counter {
    match get_or_create(name, || {
        Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))
    }) {
        Metric::Counter(c) => c,
        other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
    }
}

/// Get or create the named global high-water gauge.
pub fn gauge(name: &str) -> Gauge {
    match get_or_create(name, || Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
        Metric::Gauge(g) => g,
        other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
    }
}

/// Get or create the named global histogram.
pub fn hist(name: &str) -> Hist {
    match get_or_create(name, || Metric::Hist(Hist(Arc::new(HistCells::new())))) {
        Metric::Hist(h) => h,
        other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
    }
}

/// Zero every registered metric (handles stay valid). Test support: lets
/// a test observe only its own activity in a shared process.
pub fn reset() {
    let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    for m in map.values() {
        match m {
            Metric::Counter(c) => c.0.store(0, Relaxed),
            Metric::Gauge(g) => g.0.store(0, Relaxed),
            Metric::Hist(h) => {
                for b in &h.0.buckets {
                    b.store(0, Relaxed);
                }
                h.0.sum.store(0, Relaxed);
                h.0.max.store(0, Relaxed);
            }
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic counter value.
    Counter(u64),
    /// High-water-mark gauge value.
    Gauge(u64),
    /// Histogram contents (boxed: a `LocalHist` is ~540 bytes, far
    /// larger than the scalar variants).
    Hist(Box<LocalHist>),
}

/// A point-in-time copy of every registered metric, in name order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub metrics: Vec<(String, Value)>,
}

/// Snapshot the global registry. Sorted by metric name, so the rendered
/// output is schema-stable regardless of registration order.
pub fn snapshot() -> Snapshot {
    let map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let metrics = map
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => Value::Counter(c.get()),
                Metric::Gauge(g) => Value::Gauge(g.get()),
                Metric::Hist(h) => Value::Hist(Box::new(h.load())),
            };
            (name.clone(), v)
        })
        .collect();
    Snapshot { metrics }
}

impl Snapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Render as deterministic JSON: keys in name order, histogram
    /// buckets as ascending `[index, count]` pairs (non-empty only).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"metrics\": {\n");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            let sep = if i + 1 < self.metrics.len() { "," } else { "" };
            match v {
                Value::Counter(n) => {
                    s.push_str(&format!(
                        "    \"{name}\": {{\"type\": \"counter\", \"value\": {n}}}{sep}\n"
                    ));
                }
                Value::Gauge(n) => {
                    s.push_str(&format!(
                        "    \"{name}\": {{\"type\": \"gauge\", \"value\": {n}}}{sep}\n"
                    ));
                }
                Value::Hist(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(b, n)| format!("[{b}, {n}]"))
                        .collect();
                    s.push_str(&format!(
                        "    \"{name}\": {{\"type\": \"hist\", \"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}{sep}\n",
                        h.count,
                        h.sum,
                        h.max,
                        buckets.join(", ")
                    ));
                }
            }
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Render as Prometheus-style text exposition. Metric names are
    /// prefixed `kacc_` and sanitized; histograms emit cumulative
    /// `_bucket{le=...}` series up to the highest non-empty bucket.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.metrics {
            let pname = prom_name(name);
            match v {
                Value::Counter(n) => {
                    s.push_str(&format!("# TYPE {pname} counter\n{pname} {n}\n"));
                }
                Value::Gauge(n) => {
                    s.push_str(&format!("# TYPE {pname} gauge\n{pname} {n}\n"));
                }
                Value::Hist(h) => {
                    s.push_str(&format!("# TYPE {pname} histogram\n"));
                    let top = h
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map_or(0, |i| i + 1)
                        .min(BUCKETS);
                    let mut cum = 0u64;
                    for i in 0..top {
                        cum += h.buckets[i];
                        s.push_str(&format!(
                            "{pname}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_bound(i)
                        ));
                    }
                    s.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    s.push_str(&format!("{pname}_sum {}\n", h.sum));
                    s.push_str(&format!("{pname}_count {}\n", h.count));
                }
            }
        }
        s
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::from("kacc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Tests that record or toggle the global enable flag serialize here
    /// so the disabled-window test cannot drop another test's records.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bound lands in that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound of bucket {i}");
        }
    }

    #[test]
    fn local_hist_records_and_merges() {
        let mut a = LocalHist::default();
        let mut b = LocalHist::default();
        for v in [0u64, 1, 5, 1000] {
            a.record(v);
        }
        for v in [7u64, 7, 2] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.sum(), 1022);
        assert_eq!(ab.max(), 1000);
        assert!((ab.mean().unwrap() - 1022.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn shared_hist_matches_local() {
        let _g = guard();
        let h = hist("test.shared_hist_matches_local");
        let mut l = LocalHist::default();
        for v in [3u64, 9, 0, 1 << 40] {
            h.record(v);
            l.record(v);
        }
        assert_eq!(h.load(), l);
        let mut extra = LocalHist::default();
        extra.record(12);
        h.merge_local(&extra);
        l.merge(&extra);
        assert_eq!(h.load(), l);
    }

    #[test]
    fn registry_is_get_or_create_and_kind_checked() {
        let _g = guard();
        let c1 = counter("test.registry.ctr");
        let c2 = counter("test.registry.ctr");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same underlying cell");
        let g = gauge("test.registry.gauge");
        g.observe(5);
        g.observe(3);
        assert_eq!(g.get(), 5, "high-water mark only");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let _ = counter("test.kindmismatch");
        let _ = gauge("test.kindmismatch");
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = guard();
        let c = counter("test.disabled.ctr");
        set_enabled(false);
        c.inc();
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn snapshot_renders_sorted_and_stable() {
        let _g = guard();
        // Register out of order; snapshot must sort.
        let _ = counter("test.render.zzz");
        let h = hist("test.render.aaa");
        h.record(3);
        h.record(300);
        let snap = snapshot();
        let names: Vec<&str> = snap
            .metrics
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with("test.render."))
            .collect();
        assert_eq!(names, ["test.render.aaa", "test.render.zzz"]);
        let json = snap.to_json();
        assert!(json.contains("\"test.render.aaa\": {\"type\": \"hist\""));
        let prom = snap.to_prometheus();
        assert!(prom.contains("kacc_test_render_aaa_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("kacc_test_render_aaa_sum 303"));
    }

    #[test]
    fn quantile_bound_is_conservative_and_max_capped() {
        let mut h = LocalHist::default();
        assert_eq!(h.quantile_bound(990_000), 0);
        for _ in 0..99 {
            h.record(100); // bucket [64, 127]
        }
        h.record(1000); // bucket [512, 1023]
                        // p50 lands in the 100s bucket; bound >= 100 and <= 127.
        let p50 = h.quantile_bound(500_000);
        assert!((100..=127).contains(&p50), "p50 bound {p50}");
        // p99 still inside the 100s bucket (99 of 100 samples).
        assert!(h.quantile_bound(990_000) <= 127);
        // p100 hits the outlier but is capped at the true max.
        assert_eq!(h.quantile_bound(1_000_000), 1000);
        // A single sample: every quantile is that sample's bound.
        let mut one = LocalHist::default();
        one.record(7);
        assert_eq!(one.quantile_bound(990_000), 7);
    }
}
