//! Property tests for the histogram determinism contract: merging is
//! exact and order-invariant, and no sample is ever lost or duplicated.

use kacc_metrics::{bucket_bound, bucket_index, LocalHist};
use proptest::prelude::*;

/// Record `values` into shards of the given sizes, then merge the shards
/// in the order `perm` visits them.
fn shard_and_merge(values: &[u64], cuts: &[usize], perm: &[usize]) -> LocalHist {
    let mut shards: Vec<LocalHist> = Vec::new();
    let mut rest = values;
    for &c in cuts {
        let take = c.min(rest.len());
        let (head, tail) = rest.split_at(take);
        let mut h = LocalHist::default();
        for &v in head {
            h.record(v);
        }
        shards.push(h);
        rest = tail;
    }
    let mut last = LocalHist::default();
    for &v in rest {
        last.record(v);
    }
    shards.push(last);

    let mut out = LocalHist::default();
    for &i in perm {
        out.merge(&shards[i % shards.len()]);
    }
    // Any shard the permutation skipped still has to be folded in, so the
    // comparison is over the same sample set; visit the rest in order.
    let mut seen = vec![false; shards.len()];
    for &i in perm {
        seen[i % shards.len()] = true;
    }
    for (i, s) in shards.iter().enumerate() {
        if !seen[i] {
            out.merge(s);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_order_invariant(
        values in proptest::collection::vec(0u64..u64::MAX, 0..200),
        cuts in proptest::collection::vec(0usize..40, 0..6),
        a in 0usize..720,
        b in 0usize..720,
    ) {
        // Two different visit orders over the same shards; a permutation
        // is synthesized from the seeds by rotating the index space.
        let n = cuts.len() + 1;
        let perm1: Vec<usize> = (0..n).map(|i| (i + a) % n).collect();
        let perm2: Vec<usize> = (0..n).rev().map(|i| (i + b) % n).collect();
        let h1 = shard_and_merge(&values, &cuts, &perm1);
        let h2 = shard_and_merge(&values, &cuts, &perm2);
        prop_assert_eq!(h1, h2, "merge order changed the histogram");
    }

    #[test]
    fn counts_and_sums_are_conserved(
        values in proptest::collection::vec(0u64..(1u64 << 32), 0..300),
        cuts in proptest::collection::vec(0usize..50, 0..5),
    ) {
        // One big histogram vs sharded-and-merged: identical, and both
        // conserve the exact sample count and sum.
        let mut whole = LocalHist::default();
        for &v in &values {
            whole.record(v);
        }
        let n = cuts.len() + 1;
        let perm: Vec<usize> = (0..n).collect();
        let merged = shard_and_merge(&values, &cuts, &perm);
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(whole.count(), values.len() as u64);
        prop_assert_eq!(whole.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(whole.max(), values.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(
            whole.buckets().iter().sum::<u64>(),
            values.len() as u64,
            "every sample lands in exactly one bucket"
        );
    }

    #[test]
    fn samples_land_in_their_bucket(v in 0u64..u64::MAX) {
        let b = bucket_index(v);
        prop_assert!(v <= bucket_bound(b), "v {} above bound of bucket {}", v, b);
        if b > 0 {
            prop_assert!(v > bucket_bound(b - 1), "v {} not above previous bucket {}", v, b - 1);
        }
    }
}
