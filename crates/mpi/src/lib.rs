#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Mini-MPI substrate and baseline library personas.
//!
//! The paper compares its native CMA collectives against MVAPICH2, Intel
//! MPI and Open MPI (§VII). Those libraries build large-message
//! collectives out of *point-to-point* transfers — eager copies through
//! shared memory, or rendezvous (RTS/CTS) handshakes followed by a
//! kernel-assisted copy. This crate implements that substrate:
//!
//! * [`pt2pt`] — eager, two-copy shared-memory, and CMA rendezvous
//!   point-to-point protocols (with the deadlock-free `sendrecv` used by
//!   exchange patterns);
//! * [`ptcoll`] — classic collective algorithms over pt2pt: binomial
//!   scatter/gather/bcast, ring allgather, pairwise alltoall;
//! * [`baseline`] — library personas wired from those pieces:
//!   [`baseline::Library::Mvapich2`] (pt2pt with CMA rendezvous),
//!   [`baseline::Library::IntelMpi`] (two-copy shared memory), and
//!   [`baseline::Library::OpenMpi`] (kernel-assisted one-copy collectives
//!   à la Ma et al., *without* contention awareness), plus
//!   [`baseline::Library::Kacc`] — this repository's tuned designs.

pub mod baseline;
pub mod pt2pt;
pub mod ptcoll;

pub use baseline::Library;
pub use pt2pt::Protocol;
