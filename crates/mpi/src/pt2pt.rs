//! Point-to-point protocols over a [`Comm`] endpoint.
//!
//! Four protocols, mirroring what production MPI libraries do:
//!
//! * **Eager** — the payload rides the small-message control plane
//!   (copied through shared-memory slots, or inlined on the wire).
//! * **ShmCopy** — the two-copy bulk path: copy into a shared staging
//!   area, post, copy out. Cross-node this maps onto the fabric as a
//!   one-sided push.
//! * **RendezvousCma** — intra-node: the sender exposes its buffer and
//!   posts an RTS control message carrying the token; the receiver
//!   issues a single-copy kernel-assisted read and answers with a FIN.
//!   This is exactly the RTS/CTS overhead the paper's native collectives
//!   avoid (§III, Fig 9).
//! * **NetRendezvous** — cross-node large-message handshake: RTS → CTS →
//!   bulk push. Every message pays a full fabric round trip before data
//!   flows, which is why flat single-level collectives degrade with
//!   process count (§VII-G, Fig 17).
//!
//! [`send`]/[`recv`]/[`sendrecv`] resolve `RendezvousCma` to
//! `NetRendezvous` automatically when the peers sit on different nodes
//! (both sides compute this locally, so they always agree).

use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag};

/// Point-to-point transfer protocol. Sender and receiver must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Payload inlined on the control plane.
    Eager,
    /// Two-copy staging (shared memory intra-node, fabric push across).
    ShmCopy,
    /// RTS / single-copy CMA read / FIN rendezvous (intra-node only;
    /// auto-downgrades to [`Protocol::NetRendezvous`] across nodes).
    RendezvousCma,
    /// RTS / CTS / bulk-push rendezvous over the fabric.
    NetRendezvous,
}

impl Protocol {
    /// The protocol a CMA-capable library picks for `len` bytes, given
    /// its eager/rendezvous threshold (the paper cites ≥ 16 KiB as the
    /// kernel-assisted sweet spot for pt2pt).
    pub fn for_len(len: usize, rndv_threshold: usize) -> Protocol {
        if len < rndv_threshold {
            Protocol::Eager
        } else {
            Protocol::RendezvousCma
        }
    }
}

/// Reserved tag classes for pt2pt framing.
const CLASS_DATA: u32 = 48;
const CLASS_RTS: u32 = 49;
const CLASS_FIN: u32 = 50;
const CLASS_CTS: u32 = 51;

fn data_tag(user: u16) -> Tag {
    Tag::internal(CLASS_DATA, user as u32)
}
fn rts_tag(user: u16) -> Tag {
    Tag::internal(CLASS_RTS, user as u32)
}
fn fin_tag(user: u16) -> Tag {
    Tag::internal(CLASS_FIN, user as u32)
}
fn cts_tag(user: u16) -> Tag {
    Tag::internal(CLASS_CTS, user as u32)
}

/// Kernel-assisted copies cannot cross node boundaries; both ends of a
/// cross-node CMA rendezvous deterministically resolve to the network
/// rendezvous instead.
fn effective<C: Comm + ?Sized>(comm: &C, peer: usize, proto: Protocol) -> Protocol {
    if proto == Protocol::RendezvousCma && comm.node_of(peer) != comm.node_of(comm.rank()) {
        Protocol::NetRendezvous
    } else {
        proto
    }
}

// The send path is split into phases so `sendrecv` can interleave its
// two directions without deadlocking:
//   post     — non-blocking announcement / payload push
//   complete — blocking part of the send (wait CTS/FIN, push data)
// and the receive path into:
//   serve    — react to the peer's announcement (read + FIN, or CTS)
//   finish   — collect the data

fn post_send<C: Comm + ?Sized>(
    comm: &mut C,
    to: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    match proto {
        Protocol::Eager => {
            let mut payload = vec![0u8; len];
            comm.read_local(buf, off, &mut payload)?;
            comm.ctrl_send(to, data_tag(tag), &payload)
        }
        Protocol::ShmCopy => comm.shm_send_data(to, data_tag(tag), buf, off, len),
        Protocol::RendezvousCma => {
            let token = comm.expose(buf)?;
            let mut rts = token.to_bytes().to_vec();
            rts.extend_from_slice(&(off as u64).to_le_bytes());
            rts.extend_from_slice(&(len as u64).to_le_bytes());
            comm.ctrl_send(to, rts_tag(tag), &rts)
        }
        Protocol::NetRendezvous => comm.ctrl_send(to, rts_tag(tag), &(len as u64).to_le_bytes()),
    }
}

fn complete_send<C: Comm + ?Sized>(
    comm: &mut C,
    to: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    match proto {
        Protocol::Eager | Protocol::ShmCopy => Ok(()),
        Protocol::RendezvousCma => {
            let fin = comm.ctrl_recv(to, fin_tag(tag))?;
            if fin.is_empty() {
                Ok(())
            } else {
                Err(CommError::Protocol("unexpected FIN payload".into()))
            }
        }
        Protocol::NetRendezvous => {
            let cts = comm.ctrl_recv(to, cts_tag(tag))?;
            if !cts.is_empty() {
                return Err(CommError::Protocol("unexpected CTS payload".into()));
            }
            comm.shm_send_data(to, data_tag(tag), buf, off, len)
        }
    }
}

fn serve_recv<C: Comm + ?Sized>(
    comm: &mut C,
    from: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    match proto {
        Protocol::Eager | Protocol::ShmCopy => Ok(()),
        Protocol::RendezvousCma => {
            let rts = comm.ctrl_recv(from, rts_tag(tag))?;
            let (token, roff, rlen) = parse_rts(&rts)?;
            if rlen != len {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: rlen,
                });
            }
            comm.cma_read(token, roff, buf, off, len)?;
            comm.ctrl_send(from, fin_tag(tag), &[])
        }
        Protocol::NetRendezvous => {
            let rts = comm.ctrl_recv(from, rts_tag(tag))?;
            if rts.len() != 8 {
                return Err(CommError::Protocol("bad network RTS".into()));
            }
            let rlen = u64::from_le_bytes(rts.try_into().expect("length checked above")) as usize;
            if rlen != len {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: rlen,
                });
            }
            comm.ctrl_send(from, cts_tag(tag), &[])
        }
    }
}

fn finish_recv<C: Comm + ?Sized>(
    comm: &mut C,
    from: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    match proto {
        Protocol::Eager => {
            let payload = comm.ctrl_recv(from, data_tag(tag))?;
            if payload.len() != len {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: payload.len(),
                });
            }
            comm.write_local(buf, off, &payload)
        }
        Protocol::ShmCopy | Protocol::NetRendezvous => {
            comm.shm_recv_data(from, data_tag(tag), buf, off, len)
        }
        Protocol::RendezvousCma => Ok(()),
    }
}

/// Blocking send of `len` bytes from `buf[off..]` to rank `to`.
pub fn send<C: Comm + ?Sized>(
    comm: &mut C,
    to: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    let proto = effective(comm, to, proto);
    post_send(comm, to, tag, buf, off, len, proto)?;
    complete_send(comm, to, tag, buf, off, len, proto)
}

/// Blocking receive of `len` bytes into `buf[off..]` from rank `from`.
pub fn recv<C: Comm + ?Sized>(
    comm: &mut C,
    from: usize,
    tag: u16,
    buf: BufId,
    off: usize,
    len: usize,
    proto: Protocol,
) -> Result<()> {
    let proto = effective(comm, from, proto);
    serve_recv(comm, from, tag, buf, off, len, proto)?;
    finish_recv(comm, from, tag, buf, off, len, proto)
}

/// Deadlock-free combined send+receive (the engine of exchange
/// patterns). Phases are ordered so that every blocking wait depends
/// only on a phase its peer has already executed, which makes arbitrary
/// cycles of `sendrecv` safe for every protocol mix.
#[allow(clippy::too_many_arguments)]
pub fn sendrecv<C: Comm + ?Sized>(
    comm: &mut C,
    to: usize,
    sbuf: BufId,
    soff: usize,
    slen: usize,
    from: usize,
    rbuf: BufId,
    roff: usize,
    rlen: usize,
    tag: u16,
    proto: Protocol,
) -> Result<()> {
    let sproto = effective(comm, to, proto);
    let rproto = effective(comm, from, proto);
    post_send(comm, to, tag, sbuf, soff, slen, sproto)?;
    serve_recv(comm, from, tag, rbuf, roff, rlen, rproto)?;
    complete_send(comm, to, tag, sbuf, soff, slen, sproto)?;
    finish_recv(comm, from, tag, rbuf, roff, rlen, rproto)
}

fn parse_rts(rts: &[u8]) -> Result<(RemoteToken, usize, usize)> {
    if rts.len() != RemoteToken::WIRE_LEN + 16 {
        return Err(CommError::Protocol(format!("bad RTS length {}", rts.len())));
    }
    let token = RemoteToken::from_bytes(rts).ok_or(CommError::Protocol("bad RTS token".into()))?;
    let off = u64::from_le_bytes(rts[16..24].try_into().expect("length checked above")) as usize;
    let len = u64::from_le_bytes(rts[24..32].try_into().expect("length checked above")) as usize;
    Ok((token, off, len))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_comm::CommExt;
    use kacc_machine::{run_cluster, run_team};
    use kacc_model::{ArchProfile, FabricParams};

    fn ping(proto: Protocol, len: usize) {
        let (_, results) = run_team(&ArchProfile::broadwell(), 2, move |comm| {
            if comm.rank() == 0 {
                let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let sb = comm.alloc_with(&data);
                send(comm, 1, 3, sb, 0, len, proto).unwrap();
                Vec::new()
            } else {
                let rb = comm.alloc(len);
                recv(comm, 0, 3, rb, 0, len, proto).unwrap();
                comm.read_all(rb).unwrap()
            }
        });
        let expect: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
        assert_eq!(results[1], expect, "{proto:?} corrupted data");
    }

    #[test]
    fn all_protocols_deliver() {
        for proto in [Protocol::Eager, Protocol::ShmCopy, Protocol::RendezvousCma] {
            ping(proto, 1);
            ping(proto, 4096);
            ping(proto, 100_000);
        }
    }

    #[test]
    fn rendezvous_downgrades_across_nodes() {
        // A CMA rendezvous between nodes must silently become a network
        // rendezvous and still deliver.
        let (_, results) = run_cluster(&ArchProfile::knl(), 2, 2, FabricParams::ib_edr(), |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc_with(&[0x5A; 70_000]);
                send(comm, 3, 1, sb, 0, 70_000, Protocol::RendezvousCma).unwrap();
                Vec::new()
            } else if comm.rank() == 3 {
                let rb = comm.alloc(70_000);
                recv(comm, 0, 1, rb, 0, 70_000, Protocol::RendezvousCma).unwrap();
                comm.read_all(rb).unwrap()
            } else {
                Vec::new()
            }
        });
        assert_eq!(results[3], vec![0x5A; 70_000]);
    }

    #[test]
    fn net_rendezvous_pays_fabric_round_trip() {
        // The cross-node handshake must cost at least 3 fabric
        // latencies (RTS + CTS + data) more than a raw push.
        let fabric = FabricParams::ib_edr();
        let alpha = fabric.alpha_ns as u64;
        let len = 64 * 1024;
        let (rndv, _) = run_cluster(&ArchProfile::knl(), 2, 1, fabric.clone(), move |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc(len);
                send(comm, 1, 0, sb, 0, len, Protocol::RendezvousCma).unwrap();
            } else {
                let rb = comm.alloc(len);
                recv(comm, 0, 0, rb, 0, len, Protocol::RendezvousCma).unwrap();
            }
        });
        let (push, _) = run_cluster(&ArchProfile::knl(), 2, 1, fabric, move |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc(len);
                send(comm, 1, 0, sb, 0, len, Protocol::ShmCopy).unwrap();
            } else {
                let rb = comm.alloc(len);
                recv(comm, 0, 0, rb, 0, len, Protocol::ShmCopy).unwrap();
            }
        });
        assert!(
            rndv.end_ns >= push.end_ns + 2 * alpha,
            "rendezvous {} vs push {} (alpha {})",
            rndv.end_ns,
            push.end_ns,
            alpha
        );
    }

    #[test]
    fn rendezvous_costs_more_control_than_native_read() {
        // The RTS/CTS pair should show up as extra latency relative to a
        // bare cma_read of the same size (Fig 9's CMA-pt2pt vs CMA-coll).
        let arch = ArchProfile::knl();
        let len = 256 * 1024;
        let (pt2pt_run, _) = run_team(&arch, 2, move |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc(len);
                send(comm, 1, 0, sb, 0, len, Protocol::RendezvousCma).unwrap();
            } else {
                let rb = comm.alloc(len);
                recv(comm, 0, 0, rb, 0, len, Protocol::RendezvousCma).unwrap();
            }
        });
        let (native_run, _) = run_team(&arch, 2, move |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc(len);
                let tok = comm.expose(sb).unwrap();
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes()).unwrap();
                comm.wait_notify(1, Tag::user(2)).unwrap();
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let tok = RemoteToken::from_bytes(&raw).unwrap();
                let rb = comm.alloc(len);
                comm.cma_read(tok, 0, rb, 0, len).unwrap();
                comm.notify(0, Tag::user(2)).unwrap();
            }
        });
        assert!(
            pt2pt_run.end_ns > native_run.end_ns,
            "rendezvous {} should exceed native {}",
            pt2pt_run.end_ns,
            native_run.end_ns
        );
    }

    #[test]
    fn sendrecv_cycles_do_not_deadlock() {
        // A full exchange ring with every rank sending right and
        // receiving from left, all protocols.
        for proto in [Protocol::Eager, Protocol::ShmCopy, Protocol::RendezvousCma] {
            let p = 6;
            let len = 2048;
            let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&vec![me as u8; len]);
                let rb = comm.alloc(len);
                sendrecv(
                    comm,
                    (me + 1) % p,
                    sb,
                    0,
                    len,
                    (me + p - 1) % p,
                    rb,
                    0,
                    len,
                    9,
                    proto,
                )
                .unwrap();
                comm.read_all(rb).unwrap()
            });
            for (me, got) in results.iter().enumerate() {
                assert_eq!(got[0] as usize, (me + p - 1) % p, "{proto:?}");
            }
        }
    }

    #[test]
    fn sendrecv_cycles_do_not_deadlock_across_nodes() {
        // Exchange ring spanning two nodes: some directions resolve to
        // network rendezvous, some to intra-node CMA.
        let p = 6;
        let len = 50_000;
        let (_, results) = run_cluster(
            &ArchProfile::knl(),
            2,
            3,
            FabricParams::ib_edr(),
            move |comm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&vec![me as u8; len]);
                let rb = comm.alloc(len);
                sendrecv(
                    comm,
                    (me + 1) % p,
                    sb,
                    0,
                    len,
                    (me + p - 1) % p,
                    rb,
                    0,
                    len,
                    9,
                    Protocol::RendezvousCma,
                )
                .unwrap();
                comm.read_all(rb).unwrap()
            },
        );
        for (me, got) in results.iter().enumerate() {
            assert_eq!(got[0] as usize, (me + p - 1) % p);
        }
    }

    #[test]
    fn protocol_threshold_selection() {
        assert_eq!(Protocol::for_len(1024, 16384), Protocol::Eager);
        assert_eq!(Protocol::for_len(16384, 16384), Protocol::RendezvousCma);
    }

    #[test]
    fn truncated_rendezvous_is_detected() {
        let (_, results) = run_team(&ArchProfile::broadwell(), 2, |comm| {
            if comm.rank() == 0 {
                let sb = comm.alloc(64);
                send(comm, 1, 0, sb, 0, 64, Protocol::RendezvousCma).is_ok()
            } else {
                let rb = comm.alloc(128);
                // Expecting 128 bytes but the sender offers 64.
                let r = recv(comm, 0, 0, rb, 0, 128, Protocol::RendezvousCma);
                // Release the sender (it blocks on FIN) before checking.
                comm.ctrl_send(0, fin_tag(0), &[]).unwrap();
                matches!(
                    r,
                    Err(CommError::Truncated {
                        wanted: 128,
                        got: 64
                    })
                )
            }
        });
        assert!(results[1], "receiver must detect truncation");
    }
}
