//! Classic collective algorithms over point-to-point transfers — the
//! building blocks of the baseline library personas.
//!
//! These are the algorithms production libraries fall back to when no
//! native kernel-assisted collective exists: binomial trees for rooted
//! collectives, a ring for allgather, pairwise exchange for alltoall.
//! Every data hop pays the full pt2pt protocol cost (eager copies or
//! RTS/CTS rendezvous), which is precisely the overhead the paper's
//! native designs eliminate.

use crate::pt2pt::{self, Protocol};
use kacc_comm::{BufId, Comm, CommError, Result};

fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

fn unvrank(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

/// Binomial-tree broadcast over pt2pt: ⌈log₂ p⌉ forwarding rounds, each
/// moving the full message.
pub fn bcast<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    count: usize,
    root: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if p == 1 || count == 0 {
        return Ok(());
    }
    let v = vrank(me, root, p);
    if v != 0 {
        let parent = v & (v - 1);
        pt2pt::recv(comm, unvrank(parent, root, p), 20, buf, 0, count, proto)?;
    }
    let low = if v == 0 {
        usize::MAX
    } else {
        v & v.wrapping_neg()
    };
    // Forward to children, largest subtree first.
    let mut bits: Vec<usize> = Vec::new();
    let mut bit = 1usize;
    while bit < p {
        if bit < low {
            bits.push(bit);
        }
        bit <<= 1;
    }
    for &b in bits.iter().rev() {
        let child = v | b;
        if child != v && child < p {
            pt2pt::send(comm, unvrank(child, root, p), 20, buf, 0, count, proto)?;
        }
    }
    Ok(())
}

/// Binomial-tree scatter over pt2pt: the root pushes halves of the block
/// range down the tree; intermediate ranks stage their subtree's blocks
/// in a temporary buffer.
pub fn scatter<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
    root: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if count == 0 {
        return Ok(());
    }
    let v = vrank(me, root, p);

    if v == 0 {
        let sb = sendbuf.ok_or(CommError::Protocol("root scatter needs sendbuf".into()))?;
        // Stage in virtual order so subtree ranges are contiguous.
        let staged = comm.alloc(p * count);
        for vv in 0..p {
            comm.copy_local(sb, unvrank(vv, root, p) * count, staged, vv * count, count)?;
        }
        let mut span = p.next_power_of_two();
        while span > 1 {
            span /= 2;
            let child = span;
            if child < p {
                let blocks = span.min(p - child);
                pt2pt::send(
                    comm,
                    unvrank(child, root, p),
                    21,
                    staged,
                    child * count,
                    blocks * count,
                    proto,
                )?;
            }
        }
        comm.copy_local(staged, 0, recvbuf, 0, count)?;
        comm.free(staged)?;
    } else {
        // My subtree spans [v, v + span) where span = lowest set bit.
        let span = v & v.wrapping_neg();
        let blocks = span.min(p - v);
        let parent = v & (v - 1);
        if blocks == 1 {
            pt2pt::recv(comm, unvrank(parent, root, p), 21, recvbuf, 0, count, proto)?;
        } else {
            let staged = comm.alloc(blocks * count);
            pt2pt::recv(
                comm,
                unvrank(parent, root, p),
                21,
                staged,
                0,
                blocks * count,
                proto,
            )?;
            // Forward sub-halves to children: child = v + 2^b for each
            // bit b below our span bit.
            let mut half = span;
            while half > 1 {
                half /= 2;
                let child = v + half;
                if child < p {
                    let cblocks = half.min(p - child);
                    pt2pt::send(
                        comm,
                        unvrank(child, root, p),
                        21,
                        staged,
                        half * count,
                        cblocks * count,
                        proto,
                    )?;
                }
            }
            comm.copy_local(staged, 0, recvbuf, 0, count)?;
            comm.free(staged)?;
        }
    }
    Ok(())
}

/// Binomial-tree gather over pt2pt (reverse of [`scatter`]).
pub fn gather<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if count == 0 {
        return Ok(());
    }
    let v = vrank(me, root, p);
    let span = if v == 0 {
        p.next_power_of_two()
    } else {
        v & v.wrapping_neg()
    };
    let blocks = span.min(p.saturating_sub(v)).max(1);

    // Collect the subtree into staging (own block at offset 0).
    let staged = if v == 0 || blocks > 1 {
        Some(comm.alloc(blocks * count))
    } else {
        None
    };
    let own_target = staged.unwrap_or(sendbuf);
    if staged.is_some() {
        comm.copy_local(sendbuf, 0, own_target, 0, count)?;
    }
    // Receive children's subtrees, smallest first (mirrors scatter).
    let mut half = 1usize;
    while half < span {
        let child = v + half;
        if child < p {
            let cblocks = half.min(p - child);
            let st = staged.expect("internal nodes have staging");
            pt2pt::recv(
                comm,
                unvrank(child, root, p),
                22,
                st,
                half * count,
                cblocks * count,
                proto,
            )?;
        }
        half *= 2;
    }

    if v == 0 {
        let rb = recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?;
        let st = staged.expect("the tree root always stages");
        for vv in 0..p {
            comm.copy_local(st, vv * count, rb, unvrank(vv, root, p) * count, count)?;
        }
        comm.free(st)?;
    } else {
        let parent = v & (v - 1);
        pt2pt::send(
            comm,
            unvrank(parent, root, p),
            22,
            own_target,
            0,
            blocks * count,
            proto,
        )?;
        if let Some(st) = staged {
            comm.free(st)?;
        }
    }
    Ok(())
}

/// Flat (direct) gather over pt2pt: every non-root sends straight to the
/// root, which services the p−1 transfers in rank order. This is the
/// single-level strategy libraries default to for large messages; every
/// message pays the full protocol handshake at the root, which is what
/// makes it degrade with scale (§VII-G).
pub fn gather_direct<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if count == 0 {
        return Ok(());
    }
    if me == root {
        let rb = recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?;
        comm.copy_local(sendbuf, 0, rb, root * count, count)?;
        for v in 1..p {
            let r = unvrank(v, root, p);
            pt2pt::recv(comm, r, 25, rb, r * count, count, proto)?;
        }
    } else {
        pt2pt::send(comm, root, 25, sendbuf, 0, count, proto)?;
    }
    Ok(())
}

/// Flat (direct) scatter over pt2pt: the root sends each rank its block
/// directly, in rank order.
pub fn scatter_direct<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
    root: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if count == 0 {
        return Ok(());
    }
    if me == root {
        let sb = sendbuf.ok_or(CommError::Protocol("root scatter needs sendbuf".into()))?;
        comm.copy_local(sb, root * count, recvbuf, 0, count)?;
        for v in 1..p {
            let r = unvrank(v, root, p);
            pt2pt::send(comm, r, 26, sb, r * count, count, proto)?;
        }
    } else {
        pt2pt::recv(comm, root, 26, recvbuf, 0, count, proto)?;
    }
    Ok(())
}

/// Ring allgather over pt2pt: p−1 `sendrecv` steps forwarding the block
/// received in the previous step.
pub fn allgather<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if count == 0 {
        return Ok(());
    }
    comm.copy_local(sendbuf, 0, recvbuf, me * count, count)?;
    if p == 1 {
        return Ok(());
    }
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for i in 0..p - 1 {
        let send_block = (me + p - i) % p;
        let recv_block = (me + p - i - 1) % p;
        pt2pt::sendrecv(
            comm,
            right,
            recvbuf,
            send_block * count,
            count,
            left,
            recvbuf,
            recv_block * count,
            count,
            23,
            proto,
        )?;
    }
    Ok(())
}

/// Pairwise-exchange alltoall over pt2pt: p−1 `sendrecv` steps.
pub fn alltoall<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
    proto: Protocol,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if count == 0 {
        return Ok(());
    }
    comm.copy_local(sendbuf, me * count, recvbuf, me * count, count)?;
    for i in 1..p {
        let (to, from) = if p.is_power_of_two() {
            (me ^ i, me ^ i)
        } else {
            ((me + i) % p, (me + p - i) % p)
        };
        pt2pt::sendrecv(
            comm,
            to,
            sendbuf,
            to * count,
            count,
            from,
            recvbuf,
            from * count,
            count,
            24,
            proto,
        )?;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_collectives::verify::{
        alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
        scatter_sendbuf,
    };
    use kacc_comm::CommExt;
    use kacc_machine::run_team;
    use kacc_model::ArchProfile;

    const PROTOS: [Protocol; 3] = [Protocol::Eager, Protocol::ShmCopy, Protocol::RendezvousCma];

    #[test]
    fn pt2pt_bcast_delivers() {
        for proto in PROTOS {
            for p in [2usize, 5, 8] {
                for root in [0usize, p - 1] {
                    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                        let buf = if comm.rank() == root {
                            comm.alloc_with(&contribution(root, 3000))
                        } else {
                            comm.alloc(3000)
                        };
                        bcast(comm, buf, 3000, root, proto).unwrap();
                        comm.read_all(buf).unwrap()
                    });
                    for got in &results {
                        assert!(diff(got, &contribution(root, 3000)).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn pt2pt_scatter_delivers() {
        for proto in PROTOS {
            for p in [2usize, 6, 8] {
                for root in [0usize, 2 % p] {
                    let count = 1234;
                    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                        let me = comm.rank();
                        let rb = comm.alloc(count);
                        let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
                        scatter(comm, sb, rb, count, root, proto).unwrap();
                        comm.read_all(rb).unwrap()
                    });
                    for (r, got) in results.iter().enumerate() {
                        if let Some(d) = diff(got, &scatter_expected(r, count)) {
                            panic!("{proto:?} p={p} root={root} rank {r}: {d}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pt2pt_gather_delivers() {
        for proto in PROTOS {
            for p in [2usize, 6, 8] {
                for root in [0usize, p / 2] {
                    let count = 999;
                    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                        let me = comm.rank();
                        let sb = comm.alloc_with(&contribution(me, count));
                        let rb = (me == root).then(|| comm.alloc(p * count));
                        gather(comm, sb, rb, count, root, proto).unwrap();
                        rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
                    });
                    if let Some(d) = diff(&results[root], &gather_expected(p, count)) {
                        panic!("{proto:?} p={p} root={root}: {d}");
                    }
                }
            }
        }
    }

    #[test]
    fn pt2pt_allgather_delivers() {
        for proto in PROTOS {
            for p in [2usize, 7, 8] {
                let count = 800;
                let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                    let me = comm.rank();
                    let sb = comm.alloc_with(&contribution(me, count));
                    let rb = comm.alloc(p * count);
                    allgather(comm, sb, rb, count, proto).unwrap();
                    comm.read_all(rb).unwrap()
                });
                for got in &results {
                    assert!(diff(got, &gather_expected(p, count)).is_none(), "{proto:?}");
                }
            }
        }
    }

    #[test]
    fn pt2pt_alltoall_delivers() {
        for proto in PROTOS {
            for p in [2usize, 5, 8] {
                let count = 600;
                let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                    let me = comm.rank();
                    let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
                    let rb = comm.alloc(p * count);
                    alltoall(comm, sb, rb, count, proto).unwrap();
                    comm.read_all(rb).unwrap()
                });
                for (r, got) in results.iter().enumerate() {
                    if let Some(d) = diff(got, &alltoall_expected(r, p, count)) {
                        panic!("{proto:?} p={p} rank {r}: {d}");
                    }
                }
            }
        }
    }
}
