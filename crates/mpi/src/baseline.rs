//! Baseline library personas — the comparison targets of §VII.
//!
//! Each persona reflects how a production MPI library realizes
//! large-message intra-node collectives:
//!
//! * **MVAPICH2-like** — collectives composed from point-to-point
//!   transfers; large messages use the CMA rendezvous protocol
//!   (RTS/CTS + single-copy read), small messages go eager.
//! * **Intel-MPI-like** — two-copy shared-memory transfers throughout
//!   (its CMA support is limited to pt2pt in the paper's setups).
//! * **Open-MPI-like** — kernel-assisted *one-copy* collectives in the
//!   style of Ma et al. \[10\]: direct parallel reads/writes with no
//!   contention management (the paper's related-work comparison point).
//! * **Kacc** — this repository's contention-aware designs, selected by
//!   the model-driven [`Tuner`].
//!
//! All personas run over the same `Comm`, so measured differences come
//! from algorithm and protocol choices alone — the apples-to-apples
//! setting the paper's Figs 13–18 need.

use crate::pt2pt::Protocol;
use crate::ptcoll;
use kacc_collectives::{
    allgather as kacc_allgather, alltoall as kacc_alltoall, bcast as kacc_bcast,
    gather as kacc_gather, scatter as kacc_scatter, AllgatherAlgo, BcastAlgo, GatherAlgo,
    ScatterAlgo, Tuner,
};
use kacc_comm::{BufId, Comm, Result};

/// Which library persona executes the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Library {
    /// This repository's contention-aware, tuner-selected designs.
    Kacc,
    /// Point-to-point based with CMA rendezvous for large messages.
    Mvapich2,
    /// Two-copy shared-memory transfers.
    IntelMpi,
    /// Kernel-assisted one-copy collectives without contention control.
    OpenMpi,
}

impl Library {
    /// Display name used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Library::Kacc => "KACC (proposed)",
            Library::Mvapich2 => "MVAPICH2-like",
            Library::IntelMpi => "IntelMPI-like",
            Library::OpenMpi => "OpenMPI-like",
        }
    }

    /// Everything except the proposed design.
    pub fn baselines() -> [Library; 3] {
        [Library::Mvapich2, Library::IntelMpi, Library::OpenMpi]
    }

    /// Rendezvous threshold the pt2pt personas use (the paper cites
    /// ~16 KiB as where kernel-assisted pt2pt starts paying off).
    pub const RNDV_THRESHOLD: usize = 16 * 1024;

    fn pt_proto(self, len: usize) -> Protocol {
        match self {
            Library::Mvapich2 => Protocol::for_len(len, Self::RNDV_THRESHOLD),
            Library::IntelMpi => {
                if len < 4096 {
                    Protocol::Eager
                } else {
                    Protocol::ShmCopy
                }
            }
            Library::OpenMpi | Library::Kacc => Protocol::for_len(len, Self::RNDV_THRESHOLD),
        }
    }
}

/// Scatter under a persona. `tuner` is consulted only by
/// [`Library::Kacc`].
pub fn scatter<C: Comm + ?Sized>(
    comm: &mut C,
    lib: Library,
    tuner: &Tuner,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    match lib {
        Library::Kacc => {
            let algo = tuner.scatter(p, count);
            kacc_scatter(comm, algo, sendbuf, recvbuf, count, root)
        }
        Library::OpenMpi => {
            // One-copy parallel reads, no throttling (Ma et al. style).
            kacc_scatter(
                comm,
                ScatterAlgo::ParallelRead,
                sendbuf,
                recvbuf,
                count,
                root,
            )
        }
        Library::Mvapich2 | Library::IntelMpi => {
            let rb = match recvbuf {
                Some(rb) => rb,
                // pt2pt trees cannot leave the root's slice in place.
                None => {
                    let tmp = comm.alloc(count);
                    let r = ptcoll::scatter(comm, sendbuf, tmp, count, root, lib.pt_proto(count));
                    comm.free(tmp)?;
                    return r;
                }
            };
            ptcoll::scatter(comm, sendbuf, rb, count, root, lib.pt_proto(count))
        }
    }
}

/// Gather under a persona.
pub fn gather<C: Comm + ?Sized>(
    comm: &mut C,
    lib: Library,
    tuner: &Tuner,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    match lib {
        Library::Kacc => {
            let algo = tuner.gather(p, count);
            kacc_gather(comm, algo, sendbuf, recvbuf, count, root)
        }
        Library::OpenMpi => kacc_gather(
            comm,
            GatherAlgo::ParallelWrite,
            sendbuf,
            recvbuf,
            count,
            root,
        ),
        Library::Mvapich2 | Library::IntelMpi => {
            let sb = match sendbuf {
                Some(sb) => sb,
                None => {
                    // MPI_IN_PLACE at the root: stage the root's block.
                    let rb = recvbuf.expect("root gather has recvbuf");
                    let tmp = comm.alloc(count);
                    comm.copy_local(rb, me * count, tmp, 0, count)?;
                    let r = ptcoll::gather(comm, tmp, recvbuf, count, root, lib.pt_proto(count));
                    comm.free(tmp)?;
                    return r;
                }
            };
            ptcoll::gather(comm, sb, recvbuf, count, root, lib.pt_proto(count))
        }
    }
}

/// Broadcast under a persona.
pub fn bcast<C: Comm + ?Sized>(
    comm: &mut C,
    lib: Library,
    tuner: &Tuner,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    match lib {
        Library::Kacc => {
            let algo = tuner.bcast(p, count);
            kacc_bcast(comm, algo, buf, count, root)
        }
        Library::OpenMpi => kacc_bcast(comm, BcastAlgo::DirectRead, buf, count, root),
        Library::Mvapich2 | Library::IntelMpi => {
            ptcoll::bcast(comm, buf, count, root, lib.pt_proto(count))
        }
    }
}

/// Allgather under a persona.
pub fn allgather<C: Comm + ?Sized>(
    comm: &mut C,
    lib: Library,
    tuner: &Tuner,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    match lib {
        Library::Kacc => {
            let algo = tuner.allgather(p, count);
            kacc_allgather(comm, algo, sendbuf, recvbuf, count)
        }
        Library::OpenMpi => {
            // Neighbor-exchange kernel-assisted ring (Ma et al. style).
            kacc_allgather(
                comm,
                AllgatherAlgo::RingNeighbor { j: 1 },
                sendbuf,
                recvbuf,
                count,
            )
        }
        Library::Mvapich2 | Library::IntelMpi => {
            let sb = match sendbuf {
                Some(sb) => sb,
                None => {
                    let tmp = comm.alloc(count);
                    comm.copy_local(recvbuf, me * count, tmp, 0, count)?;
                    let r = ptcoll::allgather(comm, tmp, recvbuf, count, lib.pt_proto(count));
                    comm.free(tmp)?;
                    return r;
                }
            };
            ptcoll::allgather(comm, sb, recvbuf, count, lib.pt_proto(count))
        }
    }
}

/// Alltoall under a persona.
pub fn alltoall<C: Comm + ?Sized>(
    comm: &mut C,
    lib: Library,
    tuner: &Tuner,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    match lib {
        Library::Kacc => {
            let algo = tuner.alltoall(p, count);
            kacc_alltoall(comm, algo, sendbuf, recvbuf, count)
        }
        Library::OpenMpi | Library::Mvapich2 | Library::IntelMpi => {
            let sb = match sendbuf {
                Some(sb) => sb,
                None => {
                    let tmp = comm.alloc(p * count);
                    comm.copy_local(recvbuf, 0, tmp, 0, p * count)?;
                    let r = ptcoll::alltoall(comm, tmp, recvbuf, count, lib.pt_proto(count));
                    comm.free(tmp)?;
                    return r;
                }
            };
            ptcoll::alltoall(comm, sb, recvbuf, count, lib.pt_proto(count))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_collectives::verify::{contribution, diff, gather_expected};
    use kacc_comm::CommExt;
    use kacc_machine::run_team;
    use kacc_model::ArchProfile;

    const LIBS: [Library; 4] = [
        Library::Kacc,
        Library::Mvapich2,
        Library::IntelMpi,
        Library::OpenMpi,
    ];

    #[test]
    fn every_library_gathers_correctly() {
        let arch = ArchProfile::broadwell();
        for lib in LIBS {
            for count in [512usize, 40_000] {
                let tuner_arch = arch.clone();
                let (_, results) = run_team(&arch, 8, move |comm| {
                    let tuner = Tuner::new(&tuner_arch);
                    let me = comm.rank();
                    let sb = comm.alloc_with(&contribution(me, count));
                    let rb = (me == 0).then(|| comm.alloc(8 * count));
                    gather(comm, lib, &tuner, Some(sb), rb, count, 0).unwrap();
                    rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
                });
                if let Some(d) = diff(&results[0], &gather_expected(8, count)) {
                    panic!("{lib:?} count={count}: {d}");
                }
            }
        }
    }

    #[test]
    fn every_library_bcasts_correctly() {
        let arch = ArchProfile::broadwell();
        for lib in LIBS {
            let (_, results) = run_team(&arch, 7, move |comm| {
                let tuner = Tuner::new(&ArchProfile::broadwell());
                let buf = if comm.rank() == 2 {
                    comm.alloc_with(&contribution(2, 30_000))
                } else {
                    comm.alloc(30_000)
                };
                bcast(comm, lib, &tuner, buf, 30_000, 2).unwrap();
                comm.read_all(buf).unwrap()
            });
            for got in &results {
                assert!(diff(got, &contribution(2, 30_000)).is_none(), "{lib:?}");
            }
        }
    }

    #[test]
    fn proposed_design_beats_baselines_on_large_gather() {
        // Table VI's headline: the contention-aware design wins
        // large-message Gather on every architecture.
        for arch in [ArchProfile::knl(), ArchProfile::broadwell()] {
            let p = arch.default_procs.min(32);
            let count = 1 << 20;
            let mut lat = std::collections::HashMap::new();
            for lib in LIBS {
                let tuner_arch = arch.clone();
                let (run, _) = run_team(&arch, p, move |comm| {
                    let tuner = Tuner::new(&tuner_arch);
                    let me = comm.rank();
                    let sb = comm.alloc(count);
                    let rb = (me == 0).then(|| comm.alloc(p * count));
                    gather(comm, lib, &tuner, Some(sb), rb, count, 0).unwrap();
                });
                lat.insert(lib, run.end_ns);
            }
            for lib in Library::baselines() {
                assert!(
                    lat[&Library::Kacc] < lat[&lib],
                    "{}: kacc {} !< {lib:?} {}",
                    arch.name,
                    lat[&Library::Kacc],
                    lat[&lib]
                );
            }
        }
    }
}
